"""Differential tests: batched engine vs frozen reference implementations.

The production reconstructors advance every read of every cluster
simultaneously (:mod:`repro.consensus.bma`); the originals they replaced
are frozen in :mod:`repro.consensus.reference`. These tests assert the two
produce *byte-identical* output — per cluster, across whole batched units,
and under degenerate inputs — so any future optimization of the hot path
is checked by construction against an implementation that never changes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import ErrorModel
from repro.consensus import (
    IterativeReconstructor,
    OneWayReconstructor,
    ReferenceIterativeReconstructor,
    ReferenceOneWayReconstructor,
    ReferenceTwoWayReconstructor,
    TwoWayReconstructor,
)

PAIRS = [
    (OneWayReconstructor, ReferenceOneWayReconstructor),
    (TwoWayReconstructor, ReferenceTwoWayReconstructor),
    (IterativeReconstructor, ReferenceIterativeReconstructor),
]
PAIR_IDS = ["one_way", "two_way", "iterative"]


def random_unit(seed, n_clusters, length, rate, max_coverage, n_alphabet=4):
    """A batch of clusters with randomized coverage (including dropouts)."""
    rng = np.random.default_rng(seed)
    model = ErrorModel.uniform(rate)
    clusters = []
    for _ in range(n_clusters):
        original = rng.integers(0, n_alphabet, length).astype(np.uint8)
        coverage = int(rng.integers(0, max_coverage + 1))
        clusters.append([
            model.apply_indices(original, rng, n_alphabet=n_alphabet)
            for _ in range(coverage)
        ])
    return clusters


def assert_batch_matches_reference(fast, slow, clusters, length):
    batched = fast.reconstruct_many_indices(clusters, length)
    assert len(batched) == len(clusters)
    for reads, estimate in zip(clusters, batched):
        expected = slow.reconstruct_indices(reads, length)
        np.testing.assert_array_equal(estimate, expected)
        assert estimate.shape == (length,)


@pytest.mark.parametrize("fast_cls,ref_cls", PAIRS, ids=PAIR_IDS)
class TestBatchedMatchesReference:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        n_clusters=st.integers(1, 8),
        length=st.integers(1, 40),
        rate=st.floats(0.0, 0.25),
        max_coverage=st.integers(1, 6),
    )
    def test_randomized_units(self, fast_cls, ref_cls, seed, n_clusters,
                              length, rate, max_coverage):
        clusters = random_unit(seed, n_clusters, length, rate, max_coverage)
        assert_batch_matches_reference(fast_cls(), ref_cls(), clusters, length)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_binary_alphabet(self, fast_cls, ref_cls, seed):
        clusters = random_unit(seed, 5, 24, 0.2, 4, n_alphabet=2)
        assert_batch_matches_reference(
            fast_cls(n_alphabet=2), ref_cls(n_alphabet=2), clusters, 24
        )

    def test_scalar_entry_point_matches_reference(self, fast_cls, ref_cls):
        clusters = random_unit(99, 6, 30, 0.15, 5)
        fast, slow = fast_cls(), ref_cls()
        for reads in clusters:
            np.testing.assert_array_equal(
                fast.reconstruct_indices(reads, 30),
                slow.reconstruct_indices(reads, 30),
            )

    def test_empty_batch(self, fast_cls, ref_cls):
        assert fast_cls().reconstruct_many_indices([], 10) == []

    def test_empty_and_singleton_clusters(self, fast_cls, ref_cls):
        clusters = [
            [],  # dropout: no reads at all
            [np.array([2], dtype=np.int64)],  # singleton read
            [np.zeros(0, dtype=np.int64)],  # one zero-length read
            [np.array([0, 1, 2, 3] * 5, dtype=np.int64)] * 3,
        ]
        assert_batch_matches_reference(fast_cls(), ref_cls(), clusters, 12)

    def test_wildly_uneven_read_lengths(self, fast_cls, ref_cls):
        rng = np.random.default_rng(3)
        clusters = [
            [rng.integers(0, 4, n).astype(np.int64)
             for n in (1, 2, 40, 80, 3, 77)],
            [rng.integers(0, 4, 200).astype(np.int64)],
        ]
        assert_batch_matches_reference(fast_cls(), ref_cls(), clusters, 60)

    def test_zero_length_output(self, fast_cls, ref_cls):
        clusters = random_unit(5, 3, 10, 0.1, 3)
        for estimate in fast_cls().reconstruct_many_indices(clusters, 0):
            assert estimate.shape == (0,)


class TestOneWayParameterVariants:
    """Non-default lookahead / fill_symbol must match the reference too."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9), lookahead=st.integers(1, 6),
           fill=st.integers(0, 3))
    def test_lookahead_and_fill(self, seed, lookahead, fill):
        clusters = random_unit(seed, 4, 25, 0.2, 3)
        fast = OneWayReconstructor(lookahead=lookahead, fill_symbol=fill)
        slow = ReferenceOneWayReconstructor(lookahead=lookahead, fill_symbol=fill)
        assert_batch_matches_reference(fast, slow, clusters, 25)

    def test_string_batch_api(self):
        """reconstruct_many (string variant) agrees with the reference."""
        rng = np.random.default_rng(11)
        model = ErrorModel.uniform(0.1)
        strands = ["".join("ACGT"[i] for i in rng.integers(0, 4, 30))
                   for _ in range(5)]
        clusters = [model.apply_many(s, 4, rng) for s in strands]
        fast = TwoWayReconstructor()
        slow = ReferenceTwoWayReconstructor()
        batched = fast.reconstruct_many(clusters, 30)
        for reads, estimate in zip(clusters, batched):
            assert estimate == slow.reconstruct(reads, 30)
