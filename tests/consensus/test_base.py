"""Tests for shared consensus helpers."""

import numpy as np
import pytest

from repro.consensus.base import column_votes, majority_vote


class TestMajorityVote:
    def test_clear_majority(self):
        assert majority_vote([1, 1, 2]) == 1

    def test_empty_ballot(self):
        assert majority_vote([]) is None

    def test_tie_breaks_to_lowest(self):
        assert majority_vote([3, 0]) == 0

    def test_single_vote(self):
        assert majority_vote([2]) == 2

    def test_unknown_tie_break(self):
        with pytest.raises(ValueError):
            majority_vote([1], tie_break="random")

    def test_binary_alphabet(self):
        assert majority_vote([1, 1, 0], n_alphabet=2) == 1


class TestColumnVotes:
    def test_counts_active_reads(self):
        reads = [np.array([0, 1]), np.array([2]), np.array([0])]
        pointers = np.array([0, 0, 0])
        np.testing.assert_array_equal(
            column_votes(reads, pointers), [2, 0, 1, 0]
        )

    def test_exhausted_reads_do_not_vote(self):
        reads = [np.array([0]), np.array([1, 1])]
        pointers = np.array([1, 1])  # first read exhausted
        np.testing.assert_array_equal(
            column_votes(reads, pointers), [0, 1, 0, 0]
        )
