"""Tests for the two-way reconstructor."""

import numpy as np
import pytest

from repro.channel import ErrorModel
from repro.codec.basemap import random_bases
from repro.consensus import OneWayReconstructor, TwoWayReconstructor


@pytest.fixture
def reconstructor():
    return TwoWayReconstructor()


class TestBasics:
    def test_identical_reads(self, reconstructor):
        strand = "ACGTACGTACGTAC"
        assert reconstructor.reconstruct([strand] * 4, len(strand)) == strand

    def test_exact_output_length(self, reconstructor):
        for length in (1, 7, 16):
            assert len(reconstructor.reconstruct(["ACGTACG"], length)) == length

    def test_empty_cluster(self, reconstructor):
        assert reconstructor.reconstruct([], 6) == "AAAAAA"

    def test_odd_length_split(self, reconstructor):
        # Forward half gets floor(L/2); no bases lost or duplicated.
        assert len(reconstructor.reconstruct(["ACGTACGTA"] * 3, 9)) == 9

    def test_deterministic(self, reconstructor, rng):
        strand = random_bases(90, rng)
        reads = ErrorModel.uniform(0.08).apply_many(strand, 6, rng)
        assert (reconstructor.reconstruct(reads, 90)
                == reconstructor.reconstruct(reads, 90))


class TestPaperProperties:
    def test_peak_moves_to_the_middle(self, rng):
        """The Figure 4 property: two-way error peaks mid-strand."""
        reconstructor = TwoWayReconstructor()
        model = ErrorModel.uniform(0.06)
        length = 120
        errors = np.zeros(length)
        for _ in range(80):
            strand = random_bases(length, rng)
            reads = model.apply_many(strand, 5, rng)
            estimate = reconstructor.reconstruct(reads, length)
            errors += [a != b for a, b in zip(estimate, strand)]
        edges = np.concatenate([errors[:15], errors[-15:]]).mean()
        middle = errors[length // 2 - 15: length // 2 + 15].mean()
        assert middle > 2 * edges

    def test_beats_one_way_overall(self, rng):
        one_way = OneWayReconstructor()
        two_way = TwoWayReconstructor()
        model = ErrorModel.uniform(0.08)
        length = 100
        one_way_errors = 0
        two_way_errors = 0
        for _ in range(40):
            strand = random_bases(length, rng)
            reads = model.apply_many(strand, 5, rng)
            one_way_errors += sum(
                a != b for a, b in zip(one_way.reconstruct(reads, length), strand)
            )
            two_way_errors += sum(
                a != b for a, b in zip(two_way.reconstruct(reads, length), strand)
            )
        assert two_way_errors < one_way_errors

    def test_symmetric_halves_use_both_directions(self, rng):
        """Corrupting only late read regions hurts the forward scan but the
        backward scan (and hence the strand's second half) stays clean."""
        reconstructor = TwoWayReconstructor()
        strand = random_bases(60, rng)
        # Reads perfect in the second half, heavily corrupted in the first.
        model = ErrorModel.uniform(0.5)
        reads = []
        for _ in range(5):
            head = model.apply(strand[:30], rng)
            reads.append(head + strand[30:])
        estimate = reconstructor.reconstruct(reads, 60)
        tail_errors = sum(a != b for a, b in zip(estimate[45:], strand[45:]))
        assert tail_errors <= 2
