"""Tests for the ChaCha20 implementation (RFC 8439 vectors + properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ChaCha20, chacha20_decrypt, chacha20_encrypt

KEY = bytes(range(32))
NONCE = bytes.fromhex("000000000000004a00000000")


class TestRfc8439Vectors:
    def test_keystream_block_vector(self):
        """RFC 8439 section 2.3.2 block function test vector."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        stream = ChaCha20(key, nonce).keystream(64, initial_counter=1)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert stream == expected

    def test_encryption_vector(self):
        """RFC 8439 section 2.4.2 encryption test vector."""
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ciphertext = chacha20_encrypt(plaintext, KEY, NONCE)
        expected = bytes.fromhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d"
        )
        assert ciphertext == expected


class TestBasics:
    def test_roundtrip(self):
        data = b"the quick brown fox" * 10
        assert chacha20_decrypt(chacha20_encrypt(data, KEY, NONCE), KEY, NONCE) == data

    def test_empty_message(self):
        assert chacha20_encrypt(b"", KEY, NONCE) == b""

    def test_key_length_validated(self):
        with pytest.raises(ValueError):
            ChaCha20(b"short", NONCE)

    def test_nonce_length_validated(self):
        with pytest.raises(ValueError):
            ChaCha20(KEY, b"short")

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ChaCha20(KEY, NONCE).keystream(-1)

    def test_different_nonces_differ(self):
        other = bytes.fromhex("000000000000004a00000001")
        assert chacha20_encrypt(b"x" * 64, KEY, NONCE) != chacha20_encrypt(
            b"x" * 64, KEY, other
        )

    def test_counter_offsets_are_consistent(self):
        cipher = ChaCha20(KEY, NONCE)
        full = cipher.keystream(128, initial_counter=1)
        second_block = cipher.keystream(64, initial_counter=2)
        assert full[64:] == second_block


class TestStreamCipherLocality:
    """The property DnaMapper's encrypted-approximate-storage relies on."""

    def test_single_bit_flip_stays_local(self):
        plaintext = bytes(range(256))
        ciphertext = bytearray(chacha20_encrypt(plaintext, KEY, NONCE))
        ciphertext[100] ^= 0x40
        recovered = chacha20_decrypt(bytes(ciphertext), KEY, NONCE)
        diffs = [i for i in range(256) if recovered[i] != plaintext[i]]
        assert diffs == [100]
        assert recovered[100] ^ plaintext[100] == 0x40

    @settings(max_examples=30)
    @given(st.binary(min_size=1, max_size=300), st.data())
    def test_flip_property(self, plaintext, data):
        position = data.draw(st.integers(0, len(plaintext) - 1))
        mask = data.draw(st.integers(1, 255))
        ciphertext = bytearray(chacha20_encrypt(plaintext, KEY, NONCE))
        ciphertext[position] ^= mask
        recovered = chacha20_decrypt(bytes(ciphertext), KEY, NONCE)
        assert recovered[position] == plaintext[position] ^ mask
        assert recovered[:position] == plaintext[:position]
        assert recovered[position + 1:] == plaintext[position + 1:]

    def test_keystream_looks_balanced(self):
        stream = np.frombuffer(ChaCha20(KEY, NONCE).keystream(1 << 16),
                               dtype=np.uint8)
        bit_fraction = np.unpackbits(stream).mean()
        assert 0.49 < bit_fraction < 0.51
