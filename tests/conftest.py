"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator; tests that need randomness use this."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix_config():
    """A small but non-trivial encoding-unit geometry for pipeline tests."""
    from repro.core import MatrixConfig

    return MatrixConfig(m=8, n_columns=60, nsym=12, payload_rows=10)
