"""Tests for PCR selection and trimming."""

import pytest

from repro.channel import ErrorModel
from repro.codec.basemap import random_bases
from repro.primers import PcrSelector, PrimerPair, attach_primers


@pytest.fixture
def pair():
    return PrimerPair(forward="ACGTACGTACGTACGTACGT",
                      reverse="TGCATGCATGCATGCATGCA")


@pytest.fixture
def other_pair():
    return PrimerPair(forward="GGTTGGTTAACCAACCGGTT",
                      reverse="CCAACCAATTGGTTGGCCAA")


class TestAttachPrimers:
    def test_layout(self, pair):
        tagged = attach_primers("AAAA", pair)
        assert tagged.startswith(pair.forward)
        assert tagged.endswith(pair.reverse)
        assert len(tagged) == 4 + pair.overhead_bases


class TestPcrSelector:
    def test_clean_read_matches_and_trims(self, pair):
        payload = "ACCATTGGAACCATTGG"
        read = attach_primers(payload, pair)
        selector = PcrSelector(pair)
        assert selector.matches(read)
        assert selector.trim(read) == payload

    def test_wrong_primer_rejected(self, pair, other_pair):
        read = attach_primers("ACCATTGGAACCATTGG", other_pair)
        selector = PcrSelector(pair, max_errors=3)
        assert not selector.matches(read)

    def test_noisy_primer_tolerated(self, pair, rng):
        payload = random_bases(30, rng)
        read = attach_primers(payload, pair)
        model = ErrorModel.uniform(0.04)
        selector = PcrSelector(pair, max_errors=4)
        matched = 0
        for _ in range(20):
            noisy = model.apply(read, rng)
            if selector.matches(noisy):
                matched += 1
        assert matched >= 16  # the occasional heavy corruption may miss

    def test_trim_recovers_payload_approximately(self, pair, rng):
        payload = random_bases(40, rng)
        read = attach_primers(payload, pair)
        selector = PcrSelector(pair, max_errors=3)
        trimmed = selector.trim(read)
        assert trimmed == payload

    def test_select_filters_mixture(self, pair, other_pair, rng):
        mine = [attach_primers(random_bases(20, rng), pair) for _ in range(5)]
        theirs = [attach_primers(random_bases(20, rng), other_pair)
                  for _ in range(5)]
        selector = PcrSelector(pair, max_errors=3)
        selected = selector.select(mine + theirs)
        assert len(selected) == 5

    def test_trim_returns_none_on_mismatch(self, pair, other_pair):
        selector = PcrSelector(pair, max_errors=2)
        assert selector.trim(attach_primers("AAAA", other_pair)) is None

    def test_read_shorter_than_primers(self, pair):
        selector = PcrSelector(pair, max_errors=2)
        assert selector.trim("ACG") is None
