"""Tests for primer design."""

import pytest

from repro.cluster.distance import edit_distance
from repro.codec.constraints import gc_content, max_homopolymer_run
from repro.primers import PrimerDesigner, PrimerPair


class TestPrimerPair:
    def test_overhead(self):
        pair = PrimerPair(forward="ACGT", reverse="TGCA")
        assert pair.overhead_bases == 8


class TestPrimerDesigner:
    @pytest.fixture(scope="class")
    def designed(self):
        designer = PrimerDesigner(length=16, min_distance=6)
        return designer.design_set(3, rng=7)

    def test_count_and_length(self, designed):
        assert len(designed) == 3
        for pair in designed:
            assert len(pair.forward) == 16
            assert len(pair.reverse) == 16

    def test_constraints_hold(self, designed):
        for pair in designed:
            for primer in (pair.forward, pair.reverse):
                assert max_homopolymer_run(primer) <= 3
                assert 0.4 <= gc_content(primer) <= 0.6

    def test_mutual_distance(self, designed):
        primers = [p for pair in designed for p in (pair.forward, pair.reverse)]
        for i in range(len(primers)):
            for j in range(i + 1, len(primers)):
                assert edit_distance(primers[i], primers[j]) >= 6

    def test_deterministic(self):
        designer = PrimerDesigner(length=12, min_distance=4)
        assert designer.design_set(2, rng=1) == designer.design_set(2, rng=1)

    def test_impossible_constraints_raise(self):
        designer = PrimerDesigner(length=4, min_distance=4, max_attempts=50)
        with pytest.raises(RuntimeError):
            designer.design_set(40, rng=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrimerDesigner(length=2)
        with pytest.raises(ValueError):
            PrimerDesigner(min_distance=0)
