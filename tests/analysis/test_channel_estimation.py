"""Tests for channel-parameter estimation."""

import numpy as np
import pytest

from repro.analysis.channel_estimation import (
    ChannelEstimate,
    count_alignment_operations,
    estimate_channel,
)
from repro.channel import ErrorModel
from repro.codec.basemap import random_bases


class TestCountOperations:
    def test_identical(self):
        assert count_alignment_operations("ACGT", "ACGT") == (4, 0, 0, 0)

    def test_single_substitution(self):
        assert count_alignment_operations("ACGT", "AGGT") == (3, 1, 0, 0)

    def test_single_deletion(self):
        matches, subs, dels, ins = count_alignment_operations("ACGT", "AGT")
        assert dels == 1 and ins == 0 and subs == 0 and matches == 3

    def test_single_insertion(self):
        matches, subs, dels, ins = count_alignment_operations("ACGT", "ACCGT")
        assert ins == 1 and dels == 0 and matches == 4

    def test_empty_reference(self):
        assert count_alignment_operations("", "ACG") == (0, 0, 0, 3)

    def test_empty_read(self):
        assert count_alignment_operations("ACG", "") == (0, 0, 3, 0)

    def test_operation_count_equals_edit_distance(self, rng):
        from repro.cluster.distance import edit_distance
        for _ in range(10):
            a = random_bases(rng.integers(5, 30), rng)
            b = random_bases(rng.integers(5, 30), rng)
            _, subs, dels, ins = count_alignment_operations(a, b)
            assert subs + dels + ins == edit_distance(a, b)


class TestEstimateChannel:
    def test_noiseless(self, rng):
        strands = [random_bases(100, rng) for _ in range(3)]
        estimate = estimate_channel(strands, [[s] * 2 for s in strands])
        assert estimate.total_rate == 0.0
        assert estimate.n_positions == 600

    def test_recovers_known_rates(self, rng):
        """Estimates land near the true channel parameters."""
        model = ErrorModel.with_breakdown(0.09, ins_frac=0.2, del_frac=0.3,
                                          sub_frac=0.5)
        strands = [random_bases(300, rng) for _ in range(10)]
        reads = [model.apply_many(s, 5, rng) for s in strands]
        estimate = estimate_channel(strands, reads)
        assert estimate.total_rate == pytest.approx(0.09, abs=0.015)
        assert estimate.p_substitution == pytest.approx(0.045, abs=0.012)
        assert estimate.p_deletion == pytest.approx(0.027, abs=0.01)
        assert estimate.p_insertion == pytest.approx(0.018, abs=0.01)

    def test_indel_fraction(self):
        estimate = ChannelEstimate(0.01, 0.02, 0.07, n_positions=1000)
        assert estimate.indel_fraction == pytest.approx(0.3)

    def test_zero_rate_indel_fraction(self):
        assert ChannelEstimate(0, 0, 0, 0).indel_fraction == 0.0

    def test_empty_input(self):
        estimate = estimate_channel([], [])
        assert estimate.n_positions == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            estimate_channel(["ACGT"], [])

    def test_blind_estimation_via_consensus(self, rng):
        """Without ground truth, the consensus estimate works as reference."""
        from repro.consensus import TwoWayReconstructor
        model = ErrorModel.uniform(0.06)
        strand = random_bases(200, rng)
        reads = model.apply_many(strand, 8, rng)
        consensus = TwoWayReconstructor().reconstruct(reads, 200)
        estimate = estimate_channel([consensus], [reads])
        assert estimate.total_rate == pytest.approx(0.06, abs=0.025)
