"""Tests for color-image stores (ColorJpegCodec inside the experiment)."""

import numpy as np
import pytest

from repro.analysis import ImageStoreExperiment
from repro.core import MatrixConfig
from repro.media import ColorJpegCodec, synth_image_rgb

MATRIX = MatrixConfig(m=8, n_columns=200, nsym=37, payload_rows=22)


@pytest.fixture(scope="module")
def store():
    images = [synth_image_rgb(48, 48, rng=i) for i in range(2)]
    return ImageStoreExperiment(
        images, MATRIX, layout="dnamapper",
        codec=ColorJpegCodec(quality=55), rng=4,
    )


class TestColorStore:
    def test_archive_fits(self, store):
        assert store.archive.n_bits <= store.pipeline.capacity_bits

    def test_clean_retrieval_lossless(self, store):
        pool = store.build_pool(error_rate=0.0, max_coverage=1, rng=0)
        result = store.retrieve(pool.clusters_at(1))
        assert result.archive_ok and result.decode_clean
        assert result.mean_loss_db == 0.0

    def test_noisy_retrieval(self, store):
        pool = store.build_pool(error_rate=0.05, max_coverage=10, rng=1)
        result = store.retrieve(pool.clusters_at(10))
        assert result.archive_ok
        assert result.mean_loss_db < 1.0

    def test_graceful_degradation(self, store):
        pool = store.build_pool(error_rate=0.08, max_coverage=10, rng=2)
        good = store.retrieve(pool.clusters_at(10))
        bad = store.retrieve(pool.clusters_at(3))
        assert bad.mean_loss_db >= good.mean_loss_db
