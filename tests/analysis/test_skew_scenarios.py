"""`ErrorRateMap`-driven skew scenarios through the batched refiners.

The engine has carried per-strand/per-position rates since the columnar
read plane landed, but nothing exercised them end to end. These tests
push ramped positional rates through the batched iterative and posterior
reconstructors at tier-1 scale and check the physics: realized error
concentrates where the injected rate is high, and the posterior's
per-position confidence dips exactly there.
"""

import numpy as np
import pytest

from repro.analysis import (
    positional_confidence_profile,
    positional_error_profile,
)
from repro.channel import BatchedChannelEngine, ErrorModel, ErrorRateMap
from repro.consensus import IterativeReconstructor, PosteriorReconstructor

LENGTH = 60


def ramped_map(length=LENGTH, base_rate=0.04, slope=6.0):
    """Rates rising linearly along the strand: tail ~ slope x the head."""
    weights = np.linspace(1.0, slope, length)
    return ErrorRateMap.scaled(ErrorModel.uniform(base_rate), weights)


class TestRampedRatesThroughPosterior:
    def test_confidence_dips_where_error_peaks(self):
        """The headline scenario: ramped per-position rates -> the
        realized error and the posterior confidence must both flag the
        high-rate tail, through the fully batched path."""
        errors, confidence = positional_confidence_profile(
            PosteriorReconstructor(channel=ErrorModel.uniform(0.08)),
            length=LENGTH, error_model=ramped_map(), coverage=5, trials=60,
            rng=11,
        )
        head = slice(0, LENGTH // 3)
        tail = slice(2 * LENGTH // 3, LENGTH)
        assert errors[tail].mean() > 2 * errors[head].mean()
        assert confidence[tail].mean() < confidence[head].mean()

    def test_confidence_tracks_error_positions(self):
        """Within the same sweep, positions reconstructed wrongly carry
        less posterior mass than positions reconstructed correctly."""
        rng = np.random.default_rng(7)
        rate_map = ramped_map(slope=8.0)
        originals = rng.integers(0, 4, size=(50, LENGTH)).astype(np.uint8)
        engine = BatchedChannelEngine(rate_map)
        batch = engine.sequence_counts(originals, np.full(50, 5), rng)
        results = PosteriorReconstructor(
            channel=ErrorModel.uniform(0.08)
        ).reconstruct_batch_with_confidence(batch, LENGTH)
        estimates = np.stack([e for e, _ in results])
        confidences = np.stack([c for _, c in results])
        wrong = estimates != originals
        assert wrong.any() and (~wrong).any()
        assert confidences[wrong].mean() < confidences[~wrong].mean()

    def test_uniform_map_matches_uniform_model(self):
        """A flat rate map is the uniform channel: identical RNG stream,
        identical reads, identical profile."""
        model = ErrorModel.uniform(0.06)
        flat = ErrorRateMap.scaled(model, np.ones(LENGTH))
        reconstructor = PosteriorReconstructor(channel=model)
        kwargs = dict(length=LENGTH, coverage=4, trials=12, rng=3)
        errors_map, conf_map = positional_confidence_profile(
            reconstructor, error_model=flat, **kwargs
        )
        errors_model, conf_model = positional_confidence_profile(
            reconstructor, error_model=model, **kwargs
        )
        np.testing.assert_array_equal(errors_map, errors_model)
        np.testing.assert_array_equal(conf_map, conf_model)


class TestRampedRatesThroughIterative:
    def test_error_concentrates_in_high_rate_tail(self):
        profile = positional_error_profile(
            IterativeReconstructor(), length=LENGTH,
            error_model=ramped_map(), coverage=5, trials=60, rng=13,
        )
        head = slice(0, LENGTH // 3)
        tail = slice(2 * LENGTH // 3, LENGTH)
        assert profile[tail].mean() > 2 * profile[head].mean()


class TestPerStrandRates:
    def test_noisy_strand_less_confident_than_clean(self):
        """A 2-D map (one row per strand): the all-but-noiseless strand's
        cluster must come back near-certain, the noisy strand's must not."""
        rng = np.random.default_rng(21)
        rates = np.vstack([
            np.full(LENGTH, 0.001), np.full(LENGTH, 0.12),
        ])
        rate_map = ErrorRateMap(
            p_insertion=rates / 3, p_deletion=rates / 3,
            p_substitution=rates / 3,
        )
        originals = rng.integers(0, 4, size=(2, LENGTH)).astype(np.uint8)
        engine = BatchedChannelEngine(rate_map)
        batch = engine.sequence_counts(originals, np.full(2, 6), rng)
        results = PosteriorReconstructor(
            channel=ErrorModel.uniform(0.08)
        ).reconstruct_batch_with_confidence(batch, LENGTH)
        (clean_est, clean_conf), (noisy_est, noisy_conf) = results
        np.testing.assert_array_equal(clean_est, originals[0])
        assert clean_conf.mean() > noisy_conf.mean()

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            positional_confidence_profile(
                PosteriorReconstructor(), 10, ErrorModel.uniform(0.1),
                coverage=0, trials=1,
            )
