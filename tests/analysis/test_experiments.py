"""Tests for the experiment harnesses."""

import numpy as np
import pytest

from repro.analysis import (
    CATASTROPHIC_LOSS_DB,
    ImageStoreExperiment,
    min_coverage_for_error_free,
    min_coverage_vs_redundancy,
)
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.media import synth_image

SMALL = MatrixConfig(m=8, n_columns=50, nsym=10, payload_rows=8)


class TestMinCoverage:
    def test_noiseless_needs_single_read(self):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=SMALL))
        result = min_coverage_for_error_free(
            pipeline, error_rate=0.0, coverages=[1, 2, 3], trials=2, rng=0,
        )
        assert result == 1.0

    @pytest.mark.slow
    def test_noisier_channel_needs_more_coverage(self):
        # Smallest sweep that still separates the two rates: the 10% channel
        # needs well under 13 reads on this geometry, so the grid is not
        # saturated and the ordering is structural, not statistical.
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=SMALL))
        low = min_coverage_for_error_free(
            pipeline, 0.03, coverages=range(1, 13), trials=2, rng=1,
        )
        high = min_coverage_for_error_free(
            pipeline, 0.10, coverages=range(1, 13), trials=2, rng=1,
        )
        assert high > low

    def test_failure_reported_beyond_grid(self):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=SMALL))
        result = min_coverage_for_error_free(
            pipeline, error_rate=0.30, coverages=[1], trials=1, rng=2,
        )
        assert result == 2.0  # max + 1 signals "not achievable on the grid"

    def test_validation(self):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=SMALL))
        with pytest.raises(ValueError):
            min_coverage_for_error_free(pipeline, 0.1, [], trials=1)
        with pytest.raises(ValueError):
            min_coverage_for_error_free(pipeline, 0.1, [1], trials=0)


class TestMinCoverageVsRedundancy:
    @pytest.mark.slow
    def test_less_redundancy_never_cheaper(self):
        results = min_coverage_vs_redundancy(
            SMALL, layout="gini", error_rate=0.06,
            effective_nsym_values=[10, 4],
            coverages=range(1, 16), trials=2, rng=3,
        )
        full = dict(results)[10]
        reduced = dict(results)[4]
        assert reduced >= full

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            min_coverage_vs_redundancy(
                SMALL, "baseline", 0.06, effective_nsym_values=[0],
                coverages=[1],
            )


@pytest.fixture(scope="module")
def store():
    matrix = MatrixConfig(m=8, n_columns=110, nsym=20, payload_rows=14)
    images = [synth_image(48, 48, rng=i) for i in range(2)]
    return ImageStoreExperiment(images, matrix, layout="dnamapper",
                                quality=60, rng=5)


class TestImageStoreExperiment:
    def test_archive_fits(self, store):
        assert store.archive.n_bits <= store.pipeline.capacity_bits

    def test_clean_retrieval_is_lossless(self, store):
        pool = store.build_pool(error_rate=0.0, max_coverage=1, rng=0)
        result = store.retrieve(pool.clusters_at(1))
        assert result.archive_ok and result.decode_clean
        assert result.mean_loss_db == 0.0
        assert result.n_catastrophic == 0

    def test_noisy_retrieval_at_high_coverage(self, store):
        pool = store.build_pool(error_rate=0.05, max_coverage=10, rng=1)
        result = store.retrieve(pool.clusters_at(10))
        assert result.archive_ok
        assert result.mean_loss_db < 1.0  # at most barely noticeable

    def test_low_coverage_degrades_gracefully(self, store):
        pool = store.build_pool(error_rate=0.08, max_coverage=10, rng=2)
        good = store.retrieve(pool.clusters_at(10))
        bad = store.retrieve(pool.clusters_at(3))
        assert bad.mean_loss_db >= good.mean_loss_db

    def test_catastrophic_loss_capped(self, store):
        pool = store.build_pool(error_rate=0.30, max_coverage=2, rng=3)
        result = store.retrieve(pool.clusters_at(2))
        assert all(loss <= CATASTROPHIC_LOSS_DB for loss in result.losses_db)

    def test_baseline_layout_variant(self):
        matrix = MatrixConfig(m=8, n_columns=110, nsym=20, payload_rows=14)
        images = [synth_image(48, 48, rng=9)]
        experiment = ImageStoreExperiment(images, matrix, layout="baseline",
                                          quality=60, rng=6)
        pool = experiment.build_pool(error_rate=0.0, max_coverage=1, rng=0)
        result = experiment.retrieve(pool.clusters_at(1))
        assert result.mean_loss_db == 0.0

    def test_unencrypted_variant(self):
        matrix = MatrixConfig(m=8, n_columns=110, nsym=20, payload_rows=14)
        images = [synth_image(48, 48, rng=10)]
        experiment = ImageStoreExperiment(images, matrix, layout="gini",
                                          quality=60, encrypt=False, rng=7)
        pool = experiment.build_pool(error_rate=0.0, max_coverage=1, rng=0)
        assert experiment.retrieve(pool.clusters_at(1)).mean_loss_db == 0.0

    def test_archive_too_big_rejected(self):
        tiny = MatrixConfig(m=8, n_columns=20, nsym=4, payload_rows=4)
        with pytest.raises(ValueError):
            ImageStoreExperiment([synth_image(64, 64, rng=0)], tiny, rng=8)
