"""Tests for skew statistics."""

import numpy as np
import pytest

from repro.analysis import errors_per_codeword, gini_coefficient
from repro.core import BaselineLayout, GiniLayout, MatrixConfig


class TestGiniCoefficient:
    def test_perfect_equality(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_total_inequality_approaches_one(self):
        values = [0] * 99 + [100]
        assert gini_coefficient(values) > 0.9

    def test_known_value(self):
        # For [0, 1]: mean absolute difference = 1, mean = 0.5 -> G = 0.5.
        assert gini_coefficient([0, 1]) == pytest.approx(0.5)

    def test_scale_invariant(self):
        a = gini_coefficient([1, 2, 3, 4])
        b = gini_coefficient([10, 20, 30, 40])
        assert a == pytest.approx(b)

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient([1, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gini_coefficient([])


class TestErrorsPerCodeword:
    @pytest.fixture
    def config(self):
        return MatrixConfig(m=8, n_columns=20, nsym=4, payload_rows=6)

    def test_baseline_counts_by_row(self, config, rng):
        layout = BaselineLayout(config)
        truth = rng.integers(0, 256, (6, 20))
        received = truth.copy()
        received[2, 5] ^= 1
        received[2, 9] ^= 3
        received[4, 0] ^= 7
        counts = errors_per_codeword(layout, truth, received)
        np.testing.assert_array_equal(counts, [0, 0, 2, 0, 1, 0])

    def test_gini_spreads_row_errors(self, config, rng):
        """Errors concentrated in one matrix row land in *different*
        diagonal codewords — the mechanism behind Figure 11."""
        layout = GiniLayout(config)
        truth = rng.integers(0, 256, (6, 20))
        received = truth.copy()
        received[3, :] ^= 1  # an entire row corrupted
        counts = errors_per_codeword(layout, truth, received)
        assert counts.sum() == 20
        assert counts.max() <= int(np.ceil(20 / 6)) + 1  # nearly even

    def test_erased_columns_excluded(self, config, rng):
        layout = BaselineLayout(config)
        truth = rng.integers(0, 256, (6, 20))
        received = truth.copy()
        received[:, 7] ^= 9
        counts = errors_per_codeword(layout, truth, received,
                                     erased_columns=[7])
        assert counts.sum() == 0

    def test_shape_mismatch_rejected(self, config):
        layout = BaselineLayout(config)
        with pytest.raises(ValueError):
            errors_per_codeword(layout, np.zeros((6, 20)), np.zeros((5, 20)))
