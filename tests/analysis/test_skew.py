"""Tests for positional error profiling."""

import numpy as np
import pytest

from repro.analysis import positional_error_profile, positional_error_profile_binary
from repro.channel import ErrorModel
from repro.consensus import (
    OneWayReconstructor,
    OptimalMedianReconstructor,
    TwoWayReconstructor,
)


class TestPositionalErrorProfile:
    def test_shape_and_range(self):
        profile = positional_error_profile(
            TwoWayReconstructor(), length=40,
            error_model=ErrorModel.uniform(0.1), coverage=4, trials=10, rng=0,
        )
        assert profile.shape == (40,)
        assert (profile >= 0).all() and (profile <= 1).all()

    def test_noiseless_profile_is_zero(self):
        profile = positional_error_profile(
            TwoWayReconstructor(), length=30,
            error_model=ErrorModel.uniform(0.0), coverage=3, trials=5, rng=1,
        )
        assert not profile.any()

    def test_deterministic(self):
        kwargs = dict(length=30, error_model=ErrorModel.uniform(0.1),
                      coverage=4, trials=8, rng=7)
        a = positional_error_profile(OneWayReconstructor(), **kwargs)
        b = positional_error_profile(OneWayReconstructor(), **kwargs)
        np.testing.assert_array_equal(a, b)

    def test_one_way_skew_shape(self):
        """Fig 3: error probability rises with position."""
        profile = positional_error_profile(
            OneWayReconstructor(), length=100,
            error_model=ErrorModel.uniform(0.05), coverage=5, trials=60, rng=2,
        )
        assert profile[-25:].mean() > 3 * profile[:25].mean()

    def test_two_way_peak_in_middle(self):
        """Fig 4: two-way reconstruction peaks mid-strand."""
        profile = positional_error_profile(
            TwoWayReconstructor(), length=100,
            error_model=ErrorModel.uniform(0.06), coverage=5, trials=80, rng=3,
        )
        edges = np.concatenate([profile[:12], profile[-12:]]).mean()
        middle = profile[38:62].mean()
        assert middle > 2 * edges

    def test_validation(self):
        with pytest.raises(ValueError):
            positional_error_profile(
                TwoWayReconstructor(), 10, ErrorModel.uniform(0.1),
                coverage=0, trials=1,
            )
        with pytest.raises(ValueError):
            positional_error_profile(
                TwoWayReconstructor(), 10, ErrorModel.uniform(0.1),
                coverage=1, trials=0,
            )


class TestBinaryProfile:
    def test_adversarial_median_profile(self):
        """Fig 6 machinery: the optimal median with adversarial ties still
        produces a valid profile (the skew assertion lives in the bench)."""
        profile = positional_error_profile_binary(
            OptimalMedianReconstructor(n_alphabet=2, max_candidates=256),
            length=10, error_model=ErrorModel.uniform(0.2),
            coverage=3, trials=6, rng=4, adversarial=True,
        )
        assert profile.shape == (10,)
        assert (profile >= 0).all() and (profile <= 1).all()

    def test_non_adversarial_binary(self):
        profile = positional_error_profile_binary(
            TwoWayReconstructor(n_alphabet=2), length=24,
            error_model=ErrorModel.uniform(0.15), coverage=4, trials=10, rng=5,
        )
        assert profile.shape == (24,)
