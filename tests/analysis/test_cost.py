"""Tests for the cost model."""

import pytest

from repro.analysis.cost import CostModel
from repro.core import MatrixConfig

MATRIX = MatrixConfig(m=8, n_columns=100, nsym=18, payload_rows=12)


class TestCostModel:
    @pytest.fixture
    def model(self):
        return CostModel(synthesis_per_base=1.0, sequencing_per_base=0.01,
                         primer_overhead_bases=40)

    def test_strand_bases_includes_primers(self, model):
        assert model.strand_bases(MATRIX) == MATRIX.strand_length + 40

    def test_write_cost_scales_with_columns(self, model):
        small = MatrixConfig(m=8, n_columns=50, nsym=9, payload_rows=12)
        assert model.write_cost(MATRIX) == pytest.approx(
            2 * model.write_cost(small)
        )

    def test_write_cost_per_data_bit_decreases_with_less_parity(self, model):
        lean = MatrixConfig(m=8, n_columns=100, nsym=6, payload_rows=12)
        assert (model.write_cost_per_data_bit(lean)
                < model.write_cost_per_data_bit(MATRIX))

    def test_read_cost_linear_in_coverage(self, model):
        assert model.read_cost(MATRIX, 20) == pytest.approx(
            2 * model.read_cost(MATRIX, 10)
        )

    def test_read_saving_matches_coverage_ratio(self, model):
        # Paper headline: 30% lower coverage = 30% lower read cost.
        assert model.read_saving(MATRIX, 10, 7) == pytest.approx(0.3)

    def test_write_saving_figure13_arithmetic(self, model):
        # The paper: dropping redundancy 18.4% -> 6% on a unit whose parity
        # is 18.4% of columns saves ~12.5% of the whole synthesis cost.
        paper_like = MatrixConfig(m=16, n_columns=65535, nsym=12056,
                                  payload_rows=82)
        reduced = int(0.06 * paper_like.n_columns)
        saving = model.write_saving(paper_like, reduced)
        assert saving == pytest.approx(0.124, abs=0.01)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            CostModel(synthesis_per_base=0)
        with pytest.raises(ValueError):
            model.read_cost(MATRIX, -1)
        with pytest.raises(ValueError):
            model.write_saving(MATRIX, MATRIX.nsym + 1)
        with pytest.raises(ValueError):
            model.read_saving(MATRIX, 0, 0)
