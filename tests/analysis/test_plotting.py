"""Tests for ASCII chart rendering."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_chart


class TestAsciiChart:
    def test_renders_all_rows(self):
        chart = ascii_chart({"a": [0, 1, 2, 3]}, height=10, width=40)
        lines = chart.splitlines()
        # 10 plot rows + x-axis + legend
        assert len(lines) == 12

    def test_y_limits_in_margin(self):
        chart = ascii_chart({"a": [2.0, 8.0]}, height=8, width=20)
        assert "8.000" in chart
        assert "2.000" in chart

    def test_legend_contains_names(self):
        chart = ascii_chart({"alpha": [0, 1], "beta": [1, 0]})
        assert "alpha" in chart and "beta" in chart

    def test_labels_included(self):
        chart = ascii_chart({"a": [0, 1]}, y_label="err", x_label="pos")
        assert chart.splitlines()[0] == "err"
        assert "pos" in chart

    def test_marks_present(self):
        chart = ascii_chart({"a": [0, 5, 0, 5]}, height=6, width=24)
        assert "*" in chart

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"a": [3, 3, 3]})
        assert "*" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [0, 1], "b": [0, 1, 2]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [1]})

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [0, 1]}, height=1, width=4)

    def test_numpy_input(self):
        chart = ascii_chart({"a": np.linspace(0, 1, 30)})
        assert isinstance(chart, str)
