"""Tests for the CI perf-trend gate (``benchmarks/check_trend.py``).

The script is the guard rail that keeps the committed
``benchmarks/out/BENCH_*.json`` evidence honest: these tests drive it
over synthetic baseline/fresh evidence directories and pin the gate's
behavior — what regresses, what is noise, what is informational.
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = (Path(__file__).resolve().parents[2] / "benchmarks"
          / "check_trend.py")
spec = importlib.util.spec_from_file_location("check_trend", SCRIPT)
check_trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_trend)


def write_evidence(directory, timings, series=None):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_timings.json").write_text(json.dumps(timings))
    for name, payload in (series or {}).items():
        (directory / name).write_text(json.dumps(payload))


def write_manifest(directory, name, stages):
    """A minimal run manifest: stages as ``{name: seconds}``."""
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": 1,
        "name": name,
        "stages": {
            stage: {"seconds": seconds, "calls": 1}
            for stage, seconds in stages.items()
        },
        "total_seconds": sum(stages.values()),
    }
    (directory / f"MANIFEST_{name}.json").write_text(json.dumps(payload))


@pytest.fixture
def evidence(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    return baseline, fresh


class TestCompareTimings:
    def test_regression_detected(self):
        rows = check_trend.compare_timings(
            {"a": 10.0}, {"a": 16.0}, tolerance=0.5, min_seconds=1.0
        )
        assert rows == [("regression", "a", 10.0, 16.0)]

    def test_within_tolerance_is_ok(self):
        rows = check_trend.compare_timings(
            {"a": 10.0}, {"a": 14.9}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "ok"

    def test_improvement_reported(self):
        rows = check_trend.compare_timings(
            {"a": 10.0}, {"a": 4.0}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "improvement"

    def test_noise_floor_ignores_fast_tests(self):
        """A 35ms test tripling is noise, not a regression."""
        rows = check_trend.compare_timings(
            {"a": 0.035}, {"a": 0.110}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "ignored"

    def test_fast_test_regressing_to_scalar_speed_counts(self):
        """The absolute-growth floor must not exempt a fast figure from a
        real regression: 37ms -> 0.9s is the scalar-loop failure mode."""
        rows = check_trend.compare_timings(
            {"a": 0.037}, {"a": 0.9}, tolerance=0.5, min_seconds=0.5
        )
        assert rows[0][0] == "regression"

    def test_small_absolute_improvement_is_noise(self):
        rows = check_trend.compare_timings(
            {"a": 0.110}, {"a": 0.035}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "ignored"

    def test_crossing_noise_floor_counts(self):
        rows = check_trend.compare_timings(
            {"a": 0.9}, {"a": 5.0}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "regression"

    def test_one_sided_tests_never_fail(self):
        rows = check_trend.compare_timings(
            {"old": 9.0}, {"new": 9.0}, tolerance=0.5, min_seconds=1.0
        )
        assert {row[0] for row in rows} == {"baseline-only", "fresh-only"}

    def test_only_filter(self):
        rows = check_trend.compare_timings(
            {"fig03": 5.0, "fig12": 5.0}, {"fig03": 50.0, "fig12": 50.0},
            tolerance=0.5, min_seconds=1.0, only=["fig12"],
        )
        assert [row[1] for row in rows] == ["fig12"]


class TestCompareSeries:
    def test_drift_detected(self, evidence):
        baseline, fresh = evidence
        payload = {"title": "t", "x": [1, 2],
                   "series": {"s": [0.5, 0.25]}}
        drifted = {"title": "t", "x": [1, 2],
                   "series": {"s": [0.5, 0.30]}}
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": payload})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": drifted})
        problems, notes = check_trend.compare_series(baseline, fresh,
                                                     rtol=1e-9)
        assert len(problems) == 1
        assert problems[0][1] == "s[x=2]"
        assert notes == []

    def test_identical_series_pass(self, evidence):
        baseline, fresh = evidence
        payload = {"title": "t", "x": ["0", "1"],
                   "series": {"s": [0.1, 0.2]}}
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": payload})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": payload})
        assert check_trend.compare_series(baseline, fresh,
                                          rtol=1e-9) == ([], [])

    def test_missing_fresh_file_is_noted_not_drift(self, evidence):
        baseline, fresh = evidence
        payload = {"title": "t", "x": [1], "series": {"s": [1.0]}}
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": payload})
        write_evidence(fresh, {"a": 1.0})
        problems, notes = check_trend.compare_series(baseline, fresh,
                                                     rtol=1e-9)
        assert problems == []
        assert notes and "not produced" in notes[0]

    def test_vanished_series_is_noted_not_drift(self, evidence):
        """A renamed/dropped series key must not silently pass the gate."""
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1], "series": {"old": [1.0]}}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1], "series": {"new": [1.0]}}})
        problems, notes = check_trend.compare_series(baseline, fresh,
                                                     rtol=1e-9)
        assert problems == []
        assert notes and "'old' missing" in notes[0]

    def test_x_mismatch_is_drift(self, evidence):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1, 2], "series": {"s": [1, 2]}}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1, 3], "series": {"s": [1, 2]}}})
        problems, _ = check_trend.compare_series(baseline, fresh, rtol=1e-9)
        assert problems and problems[0][1] == "x"

    def test_stringified_x_compares_numerically(self, evidence):
        """Older evidence stringified numpy-integer x values; the format
        transition to numeric axes must not read as drift."""
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": ["0", "10"], "series": {"s": [1.0, 2.0]}}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [0, 10], "series": {"s": [1.0, 2.0]}}})
        assert check_trend.compare_series(baseline, fresh,
                                          rtol=1e-9) == ([], [])

    def test_timing_series_noted_not_drift(self, evidence):
        """Wall-clock-valued series (requests/sec, latency percentiles)
        vary run to run; the baseline's ``timing_series`` list exempts
        them from the rtol gate — noted, never failed."""
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_service.json": {
            "title": "service", "x": [1, 8],
            "series": {"requests_per_sec": [110.0, 800.0],
                       "consensus_passes": [8.0, 1.0]},
            "timing_series": ["requests_per_sec"]}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_service.json": {
            "title": "service", "x": [1, 8],
            "series": {"requests_per_sec": [95.0, 1200.0],
                       "consensus_passes": [8.0, 1.0]},
            "timing_series": ["requests_per_sec"]}})
        problems, notes = check_trend.compare_series(baseline, fresh,
                                                     rtol=1e-9)
        assert problems == []
        assert notes and "requests_per_sec" in notes[0]
        assert "not drift-gated" in notes[0]

    def test_timing_series_exemption_leaves_others_gated(self, evidence):
        """The exemption is per series name: a deterministic series in
        the same file still drift-gates."""
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_service.json": {
            "title": "service", "x": [8],
            "series": {"p99_ms": [4.0], "consensus_passes": [1.0]},
            "timing_series": ["p99_ms"]}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_service.json": {
            "title": "service", "x": [8],
            "series": {"p99_ms": [9.0], "consensus_passes": [8.0]},
            "timing_series": ["p99_ms"]}})
        problems, notes = check_trend.compare_series(baseline, fresh,
                                                     rtol=1e-9)
        assert len(problems) == 1
        assert problems[0][1] == "consensus_passes[x=8]"
        assert any("p99_ms" in note for note in notes)


class TestCompareStages:
    def test_share_drift_detected(self, evidence):
        """Clustering eating the budget consensus freed trips the gate:
        the run total barely moves, the stage's share of it does."""
        baseline, fresh = evidence
        write_manifest(baseline, "fig", {"cluster": 1.0, "consensus": 4.0})
        write_manifest(fresh, "fig", {"cluster": 4.0, "consensus": 1.0})
        problems, notes = check_trend.compare_stages(
            baseline, fresh, share_tolerance=0.15, min_seconds=0.5
        )
        assert notes == []
        assert len(problems) == 1
        file, stage, base_share, fresh_share, base_s, fresh_s = problems[0]
        assert stage == "cluster"
        assert base_share == pytest.approx(0.2)
        assert fresh_share == pytest.approx(0.8)
        assert (base_s, fresh_s) == (1.0, 4.0)

    def test_share_growth_within_tolerance_passes(self, evidence):
        baseline, fresh = evidence
        write_manifest(baseline, "fig", {"cluster": 2.0, "consensus": 8.0})
        write_manifest(fresh, "fig", {"cluster": 3.0, "consensus": 8.0})
        problems, _ = check_trend.compare_stages(
            baseline, fresh, share_tolerance=0.15, min_seconds=0.5
        )
        assert problems == []  # share grew 20% -> ~27%, inside 15 points

    def test_fast_run_share_jitter_is_noise(self, evidence):
        """Both bars must fail: a millisecond stage tripling its share
        stays under the absolute min-seconds floor."""
        baseline, fresh = evidence
        write_manifest(baseline, "fig", {"cluster": 0.01, "rs": 0.09})
        write_manifest(fresh, "fig", {"cluster": 0.05, "rs": 0.05})
        problems, _ = check_trend.compare_stages(
            baseline, fresh, share_tolerance=0.15, min_seconds=0.5
        )
        assert problems == []

    def test_proportional_slowdown_is_not_stage_drift(self, evidence):
        """Everything 2x slower keeps every share flat — that is the
        wall-clock gate's job, not the stage gate's."""
        baseline, fresh = evidence
        write_manifest(baseline, "fig", {"cluster": 2.0, "consensus": 6.0})
        write_manifest(fresh, "fig", {"cluster": 4.0, "consensus": 12.0})
        problems, _ = check_trend.compare_stages(
            baseline, fresh, share_tolerance=0.15, min_seconds=0.5
        )
        assert problems == []

    def test_one_sided_manifests_and_stages_are_notes(self, evidence):
        baseline, fresh = evidence
        write_manifest(baseline, "gone", {"cluster": 1.0})
        write_manifest(baseline, "fig", {"old_stage": 1.0})
        write_manifest(fresh, "fig", {"new_stage": 1.0})
        problems, notes = check_trend.compare_stages(
            baseline, fresh, share_tolerance=0.15, min_seconds=0.5
        )
        assert problems == []
        assert any("not produced" in note for note in notes)
        assert any("'old_stage' missing" in note for note in notes)
        assert any("'new_stage' new" in note for note in notes)

    def test_no_manifests_is_clean(self, evidence):
        baseline, fresh = evidence
        baseline.mkdir()
        fresh.mkdir()
        assert check_trend.compare_stages(
            baseline, fresh, share_tolerance=0.15, min_seconds=0.5
        ) == ([], [])


class TestMain:
    def test_clean_run_exits_zero(self, evidence, capsys):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 5.0})
        write_evidence(fresh, {"a": 5.2})
        code = check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, evidence, capsys):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 5.0})
        write_evidence(fresh, {"a": 12.0})
        code = check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_series_drift_exits_one(self, evidence):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1], "series": {"s": [1.0]}}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1], "series": {"s": [2.0]}}})
        assert check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
        ]) == 1
        assert check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
            "--skip-series",
        ]) == 0

    def test_missing_directory_exits_two(self, tmp_path):
        assert check_trend.main([
            "--baseline", str(tmp_path / "nope"),
            "--fresh", str(tmp_path / "nope"),
        ]) == 2

    def test_missing_timings_exits_two(self, evidence):
        baseline, fresh = evidence
        baseline.mkdir()
        fresh.mkdir()
        assert check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
        ]) == 2

    def test_stage_drift_exits_one_only_with_stage_flag(self, evidence,
                                                        capsys):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0})
        write_evidence(fresh, {"a": 1.0})
        write_manifest(baseline, "fig", {"cluster": 1.0, "consensus": 4.0})
        write_manifest(fresh, "fig", {"cluster": 4.0, "consensus": 1.0})
        argv = ["--baseline", str(baseline), "--fresh", str(fresh)]
        assert check_trend.main(argv) == 0  # manifests ignored by default
        capsys.readouterr()
        assert check_trend.main(argv + ["--stage"]) == 1
        out = capsys.readouterr().out
        assert "stage-drift" in out
        assert "cluster" in out
        assert "FAIL" in out

    def test_stage_share_flag_loosens_the_gate(self, evidence):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0})
        write_evidence(fresh, {"a": 1.0})
        write_manifest(baseline, "fig", {"cluster": 1.0, "consensus": 4.0})
        write_manifest(fresh, "fig", {"cluster": 4.0, "consensus": 1.0})
        assert check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
            "--stage", "--stage-share", "0.9",
        ]) == 0

    def test_against_committed_evidence(self, capsys):
        """The real committed baseline compared against itself is clean —
        the invariant the CI job starts from."""
        out_dir = SCRIPT.parent / "out"
        code = check_trend.main([
            "--baseline", str(out_dir), "--fresh", str(out_dir),
        ])
        assert code == 0
