"""Tests for the CI perf-trend gate (``benchmarks/check_trend.py``).

The script is the guard rail that keeps the committed
``benchmarks/out/BENCH_*.json`` evidence honest: these tests drive it
over synthetic baseline/fresh evidence directories and pin the gate's
behavior — what regresses, what is noise, what is informational.
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = (Path(__file__).resolve().parents[2] / "benchmarks"
          / "check_trend.py")
spec = importlib.util.spec_from_file_location("check_trend", SCRIPT)
check_trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_trend)


def write_evidence(directory, timings, series=None):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_timings.json").write_text(json.dumps(timings))
    for name, payload in (series or {}).items():
        (directory / name).write_text(json.dumps(payload))


@pytest.fixture
def evidence(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    return baseline, fresh


class TestCompareTimings:
    def test_regression_detected(self):
        rows = check_trend.compare_timings(
            {"a": 10.0}, {"a": 16.0}, tolerance=0.5, min_seconds=1.0
        )
        assert rows == [("regression", "a", 10.0, 16.0)]

    def test_within_tolerance_is_ok(self):
        rows = check_trend.compare_timings(
            {"a": 10.0}, {"a": 14.9}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "ok"

    def test_improvement_reported(self):
        rows = check_trend.compare_timings(
            {"a": 10.0}, {"a": 4.0}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "improvement"

    def test_noise_floor_ignores_fast_tests(self):
        """A 35ms test tripling is noise, not a regression."""
        rows = check_trend.compare_timings(
            {"a": 0.035}, {"a": 0.110}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "ignored"

    def test_fast_test_regressing_to_scalar_speed_counts(self):
        """The absolute-growth floor must not exempt a fast figure from a
        real regression: 37ms -> 0.9s is the scalar-loop failure mode."""
        rows = check_trend.compare_timings(
            {"a": 0.037}, {"a": 0.9}, tolerance=0.5, min_seconds=0.5
        )
        assert rows[0][0] == "regression"

    def test_small_absolute_improvement_is_noise(self):
        rows = check_trend.compare_timings(
            {"a": 0.110}, {"a": 0.035}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "ignored"

    def test_crossing_noise_floor_counts(self):
        rows = check_trend.compare_timings(
            {"a": 0.9}, {"a": 5.0}, tolerance=0.5, min_seconds=1.0
        )
        assert rows[0][0] == "regression"

    def test_one_sided_tests_never_fail(self):
        rows = check_trend.compare_timings(
            {"old": 9.0}, {"new": 9.0}, tolerance=0.5, min_seconds=1.0
        )
        assert {row[0] for row in rows} == {"baseline-only", "fresh-only"}

    def test_only_filter(self):
        rows = check_trend.compare_timings(
            {"fig03": 5.0, "fig12": 5.0}, {"fig03": 50.0, "fig12": 50.0},
            tolerance=0.5, min_seconds=1.0, only=["fig12"],
        )
        assert [row[1] for row in rows] == ["fig12"]


class TestCompareSeries:
    def test_drift_detected(self, evidence):
        baseline, fresh = evidence
        payload = {"title": "t", "x": [1, 2],
                   "series": {"s": [0.5, 0.25]}}
        drifted = {"title": "t", "x": [1, 2],
                   "series": {"s": [0.5, 0.30]}}
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": payload})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": drifted})
        problems, notes = check_trend.compare_series(baseline, fresh,
                                                     rtol=1e-9)
        assert len(problems) == 1
        assert problems[0][1] == "s[x=2]"
        assert notes == []

    def test_identical_series_pass(self, evidence):
        baseline, fresh = evidence
        payload = {"title": "t", "x": ["0", "1"],
                   "series": {"s": [0.1, 0.2]}}
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": payload})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": payload})
        assert check_trend.compare_series(baseline, fresh,
                                          rtol=1e-9) == ([], [])

    def test_missing_fresh_file_is_noted_not_drift(self, evidence):
        baseline, fresh = evidence
        payload = {"title": "t", "x": [1], "series": {"s": [1.0]}}
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": payload})
        write_evidence(fresh, {"a": 1.0})
        problems, notes = check_trend.compare_series(baseline, fresh,
                                                     rtol=1e-9)
        assert problems == []
        assert notes and "not produced" in notes[0]

    def test_vanished_series_is_noted_not_drift(self, evidence):
        """A renamed/dropped series key must not silently pass the gate."""
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1], "series": {"old": [1.0]}}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1], "series": {"new": [1.0]}}})
        problems, notes = check_trend.compare_series(baseline, fresh,
                                                     rtol=1e-9)
        assert problems == []
        assert notes and "'old' missing" in notes[0]

    def test_x_mismatch_is_drift(self, evidence):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1, 2], "series": {"s": [1, 2]}}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1, 3], "series": {"s": [1, 2]}}})
        problems, _ = check_trend.compare_series(baseline, fresh, rtol=1e-9)
        assert problems and problems[0][1] == "x"

    def test_stringified_x_compares_numerically(self, evidence):
        """Older evidence stringified numpy-integer x values; the format
        transition to numeric axes must not read as drift."""
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": ["0", "10"], "series": {"s": [1.0, 2.0]}}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [0, 10], "series": {"s": [1.0, 2.0]}}})
        assert check_trend.compare_series(baseline, fresh,
                                          rtol=1e-9) == ([], [])


class TestMain:
    def test_clean_run_exits_zero(self, evidence, capsys):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 5.0})
        write_evidence(fresh, {"a": 5.2})
        code = check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
        ])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, evidence, capsys):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 5.0})
        write_evidence(fresh, {"a": 12.0})
        code = check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_series_drift_exits_one(self, evidence):
        baseline, fresh = evidence
        write_evidence(baseline, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1], "series": {"s": [1.0]}}})
        write_evidence(fresh, {"a": 1.0}, {"BENCH_t.json": {
            "title": "t", "x": [1], "series": {"s": [2.0]}}})
        assert check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
        ]) == 1
        assert check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
            "--skip-series",
        ]) == 0

    def test_missing_directory_exits_two(self, tmp_path):
        assert check_trend.main([
            "--baseline", str(tmp_path / "nope"),
            "--fresh", str(tmp_path / "nope"),
        ]) == 2

    def test_missing_timings_exits_two(self, evidence):
        baseline, fresh = evidence
        baseline.mkdir()
        fresh.mkdir()
        assert check_trend.main([
            "--baseline", str(baseline), "--fresh", str(fresh),
        ]) == 2

    def test_against_committed_evidence(self, capsys):
        """The real committed baseline compared against itself is clean —
        the invariant the CI job starts from."""
        out_dir = SCRIPT.parent / "out"
        code = check_trend.main([
            "--baseline", str(out_dir), "--fresh", str(out_dir),
        ])
        assert code == 0
