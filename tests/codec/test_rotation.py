"""Tests for the homopolymer-free rotation codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.constraints import max_homopolymer_run
from repro.codec.rotation import RotationCodec


@pytest.fixture
def codec():
    return RotationCodec()


class TestRotationCodec:
    def test_roundtrip_simple(self, codec):
        bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        np.testing.assert_array_equal(codec.decode(codec.encode(bits)), bits)

    def test_empty_payload(self, codec):
        encoded = codec.encode(np.zeros(0, dtype=np.uint8))
        assert codec.decode(encoded).size == 0

    def test_no_homopolymers(self, codec, rng):
        bits = rng.integers(0, 2, 400).astype(np.uint8)
        strand = codec.encode(bits)
        assert max_homopolymer_run(strand) == 1

    def test_first_base_differs_from_previous(self, codec):
        bits = np.array([0, 0], dtype=np.uint8)
        for previous in "ACGT":
            strand = codec.encode(bits, previous_base=previous)
            assert strand[0] != previous

    def test_previous_base_mismatch_fails_decode(self, codec):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        strand = codec.encode(bits, previous_base="A")
        if strand[0] != "C":  # decoding with the wrong context shifts trits
            decoded_or_error = None
            try:
                decoded_or_error = codec.decode(strand, previous_base=strand[0])
            except ValueError:
                return  # repeat constraint violated: acceptable failure mode
            assert not np.array_equal(decoded_or_error, bits)

    def test_leading_zero_bits_preserved(self, codec):
        bits = np.array([0, 0, 0, 1], dtype=np.uint8)
        np.testing.assert_array_equal(codec.decode(codec.encode(bits)), bits)

    def test_all_zero_payload(self, codec):
        bits = np.zeros(64, dtype=np.uint8)
        np.testing.assert_array_equal(codec.decode(codec.encode(bits)), bits)

    def test_invalid_previous_base(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.array([1], dtype=np.uint8), previous_base="X")

    def test_decode_rejects_repeat(self, codec):
        with pytest.raises(ValueError, match="no-repeat"):
            codec.decode("AAT")

    def test_decode_rejects_too_short(self, codec):
        with pytest.raises(ValueError, match="length header"):
            codec.decode("CGT")

    def test_non_binary_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.array([2], dtype=np.uint8))

    def test_encoded_length_bound_holds(self, codec, rng):
        for n_bits in (0, 1, 8, 63, 200):
            bits = rng.integers(0, 2, n_bits).astype(np.uint8)
            assert len(codec.encode(bits)) <= codec.encoded_length(n_bits)

    def test_density_is_log2_3(self, codec):
        assert abs(codec.bits_per_base - 1.584962) < 1e-5

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 1), max_size=120))
    def test_roundtrip_property(self, bits):
        codec = RotationCodec()
        array = np.array(bits, dtype=np.uint8)
        np.testing.assert_array_equal(codec.decode(codec.encode(array)), array)
