"""Tests for the direct 2-bit base mapping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.basemap import (
    BASES,
    DirectCodec,
    bases_to_indices,
    indices_to_bases,
    random_bases,
)


class TestBaseConversions:
    def test_known_mapping(self):
        np.testing.assert_array_equal(bases_to_indices("ACGT"), [0, 1, 2, 3])

    def test_roundtrip(self):
        strand = "GATTACA"
        assert indices_to_bases(bases_to_indices(strand)) == strand

    def test_invalid_character(self):
        with pytest.raises(ValueError, match="invalid DNA"):
            bases_to_indices("ACGX")

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            indices_to_bases(np.array([4]))

    def test_empty(self):
        assert bases_to_indices("").size == 0
        assert indices_to_bases(np.zeros(0, dtype=np.uint8)) == ""


class TestRandomBases:
    def test_length(self):
        assert len(random_bases(17, rng=0)) == 17

    def test_deterministic(self):
        assert random_bases(50, rng=3) == random_bases(50, rng=3)

    def test_alphabet(self):
        assert set(random_bases(200, rng=1)) <= set(BASES)


class TestDirectCodec:
    @pytest.fixture
    def codec(self):
        return DirectCodec()

    def test_paper_mapping(self, codec):
        # 00=A, 01=C, 10=G, 11=T (Section 2.1).
        bits = np.array([0, 0, 0, 1, 1, 0, 1, 1], dtype=np.uint8)
        assert codec.encode(bits) == "ACGT"

    def test_decode_known(self, codec):
        np.testing.assert_array_equal(
            codec.decode("TA"), [1, 1, 0, 0]
        )

    def test_odd_bit_count_rejected(self, codec):
        with pytest.raises(ValueError, match="even"):
            codec.encode(np.array([1], dtype=np.uint8))

    def test_non_binary_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.array([0, 2], dtype=np.uint8))

    def test_encoded_length(self, codec):
        assert codec.encoded_length(10) == 5
        with pytest.raises(ValueError):
            codec.encoded_length(9)

    def test_density(self, codec):
        assert codec.bits_per_base == 2

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=100)
           .filter(lambda bits: len(bits) % 2 == 0))
    def test_roundtrip_property(self, bits):
        codec = DirectCodec()
        array = np.array(bits, dtype=np.uint8)
        np.testing.assert_array_equal(codec.decode(codec.encode(array)), array)
