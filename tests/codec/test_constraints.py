"""Tests for biochemical constraint validators."""

import pytest

from repro.codec.constraints import (
    gc_content,
    max_homopolymer_run,
    violates_constraints,
)


class TestGcContent:
    def test_empty(self):
        assert gc_content("") == 0.0

    def test_all_gc(self):
        assert gc_content("GCGC") == 1.0

    def test_half(self):
        assert gc_content("ATGC") == 0.5

    def test_no_gc(self):
        assert gc_content("ATAT") == 0.0


class TestHomopolymerRun:
    def test_empty(self):
        assert max_homopolymer_run("") == 0

    def test_single(self):
        assert max_homopolymer_run("A") == 1

    def test_no_repeats(self):
        assert max_homopolymer_run("ACGTACGT") == 1

    def test_run_in_middle(self):
        assert max_homopolymer_run("ACGGGT") == 3

    def test_run_at_end(self):
        assert max_homopolymer_run("ACGTTTT") == 4


class TestViolatesConstraints:
    def test_good_strand(self):
        assert not violates_constraints("ACGTACGTACGT")  # GC = 0.5, runs = 1

    def test_homopolymer_violation(self):
        assert violates_constraints("ACGTAAAAGT", max_run=3)

    def test_gc_too_low(self):
        assert violates_constraints("ATATATATAT")

    def test_gc_too_high(self):
        assert violates_constraints("GCGCGCGCGC")

    def test_custom_window(self):
        assert not violates_constraints("GCGCGCGCGC", gc_low=0.9, gc_high=1.0)
