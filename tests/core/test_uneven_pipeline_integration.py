"""Integration of the unequal-ECC scheme with the strand channel.

The uneven scheme lives outside the layout-policy family (rows have
different data capacities, so the placement abstraction does not apply);
these tests cover the strand-level integration path the uneven-ECC
ablation benchmark uses.
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.ecc import UnevenEccScheme, redundancy_profile_for_skew

MATRIX = MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=6)


@pytest.fixture
def scheme():
    profile = redundancy_profile_for_skew(
        [1, 4, 8, 8, 4, 1], total_parity=MATRIX.nsym * MATRIX.payload_rows,
        min_per_row=2,
    )
    return UnevenEccScheme(MATRIX.m, MATRIX.n_columns, profile)


@pytest.fixture
def pipeline():
    return DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="baseline"))


class TestUnevenOverStrands:
    def test_noiseless_roundtrip(self, scheme, pipeline, rng):
        data = rng.integers(0, 256, scheme.total_data_symbols)
        matrix = scheme.encode(data)
        strands = [
            pipeline._column_to_strand(matrix, column)
            for column in range(MATRIX.n_columns)
        ]
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        received = pipeline.receive(simulator.sequence(strands, rng))
        decoded, row_ok = scheme.decode(received.matrix,
                                        erasures=received.erased_columns)
        assert all(row_ok)
        np.testing.assert_array_equal(decoded, data)

    def test_noisy_roundtrip(self, scheme, pipeline, rng):
        data = rng.integers(0, 256, scheme.total_data_symbols)
        matrix = scheme.encode(data)
        strands = [
            pipeline._column_to_strand(matrix, column)
            for column in range(MATRIX.n_columns)
        ]
        simulator = SequencingSimulator(ErrorModel.uniform(0.03), FixedCoverage(10))
        received = pipeline.receive(simulator.sequence(strands, rng))
        decoded, row_ok = scheme.decode(received.matrix,
                                        erasures=received.erased_columns)
        assert all(row_ok)
        np.testing.assert_array_equal(decoded, data)

    def test_middle_rows_survive_more_noise_than_edges(self, scheme):
        """The provisioning gradient is real: middle rows tolerate error
        loads the edge rows cannot."""
        middle_parity = scheme.parity_per_row[2]
        edge_parity = scheme.parity_per_row[0]
        assert middle_parity > 2 * edge_parity
