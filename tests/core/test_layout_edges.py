"""Edge-case geometries for the layout policies."""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.core import (
    DnaMapperLayout,
    DnaStoragePipeline,
    GiniLayout,
    MatrixConfig,
    PipelineConfig,
)


class TestSingleRow:
    def test_config(self):
        config = MatrixConfig(m=8, n_columns=10, nsym=2, payload_rows=1)
        assert config.data_symbols == 8

    def test_gini_single_row_is_baseline(self):
        config = MatrixConfig(m=8, n_columns=10, nsym=2, payload_rows=1)
        layout = GiniLayout(config)
        assert layout.codeword_cells(0) == [(0, c) for c in range(10)]

    def test_dnamapper_single_row_order(self):
        config = MatrixConfig(m=8, n_columns=10, nsym=2, payload_rows=1)
        assert DnaMapperLayout(config).row_priority_order() == [0]

    @pytest.mark.parametrize("layout", ["baseline", "gini", "dnamapper"])
    def test_roundtrip(self, layout, rng):
        config = MatrixConfig(m=8, n_columns=10, nsym=2, payload_rows=1)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=config, layout=layout))
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        decoded, report = pipeline.decode(
            simulator.sequence(unit.strands, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)


class TestTwoRows:
    def test_dnamapper_order(self):
        config = MatrixConfig(m=8, n_columns=10, nsym=2, payload_rows=2)
        assert DnaMapperLayout(config).row_priority_order() == [1, 0]

    def test_gini_alternates(self):
        config = MatrixConfig(m=8, n_columns=10, nsym=2, payload_rows=2)
        layout = GiniLayout(config)
        rows = [row for row, _ in layout.codeword_cells(0)]
        assert rows == [0, 1] * 5


class TestMoreRowsThanColumns:
    """S > C: the diagonal wraps the *column* dimension instead."""

    def test_partition_still_holds(self):
        config = MatrixConfig(m=8, n_columns=6, nsym=2, payload_rows=10)
        layout = GiniLayout(config)
        seen = set()
        for k in range(layout.n_codewords):
            for position, (row, column) in enumerate(layout.codeword_cells(k)):
                assert position == column
                assert (row, column) not in seen
                seen.add((row, column))
        assert len(seen) == 60

    def test_roundtrip(self, rng):
        config = MatrixConfig(m=8, n_columns=6, nsym=2, payload_rows=10)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=config, layout="gini"))
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        decoded, report = pipeline.decode(
            simulator.sequence(unit.strands, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)


class TestGf4Unit:
    """Tiny-field units (4-bit symbols, 2-base index) work end to end."""

    def test_roundtrip(self, rng):
        config = MatrixConfig(m=4, n_columns=15, nsym=3, payload_rows=6)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=config, layout="gini"))
        assert config.index_bases == 2
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        decoded, report = pipeline.decode(
            simulator.sequence(unit.strands, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)
