"""Tests for matrix geometry and the three layout policies."""

import numpy as np
import pytest

from repro.core import BaselineLayout, DnaMapperLayout, GiniLayout, MatrixConfig
from repro.core.layout import build_layout


@pytest.fixture
def config():
    return MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=6)


class TestMatrixConfig:
    def test_derived_quantities(self, config):
        assert config.data_columns == 32
        assert config.index_bases == 4
        assert config.payload_bases == 24
        assert config.strand_length == 28
        assert config.data_symbols == 192
        assert config.data_bits == 1536
        assert config.redundancy_fraction == pytest.approx(0.2)

    def test_paper_scale_geometry(self):
        """The paper's GF(2^16) unit: 82 rows, 65535 columns."""
        config = MatrixConfig(m=16, n_columns=65535, nsym=12056,
                              payload_rows=82)
        assert config.index_bases == 8  # 16 bits, as in Section 6.1.1
        assert config.data_bits / 8 / 2**20 == pytest.approx(8.36, abs=0.1)

    def test_rejects_odd_symbol_size(self):
        with pytest.raises(ValueError):
            MatrixConfig(m=7)

    def test_rejects_too_many_columns(self):
        with pytest.raises(ValueError):
            MatrixConfig(m=4, n_columns=16, nsym=2, payload_rows=4)

    def test_rejects_bad_nsym(self):
        with pytest.raises(ValueError):
            MatrixConfig(m=8, n_columns=40, nsym=40, payload_rows=4)

    def test_nsym_zero_allowed(self):
        assert MatrixConfig(m=8, n_columns=40, nsym=0,
                            payload_rows=4).data_columns == 40


def _assert_partition(layout, config):
    """Every matrix cell belongs to exactly one codeword, at its column."""
    seen = {}
    for k in range(layout.n_codewords):
        cells = layout.codeword_cells(k)
        assert len(cells) == config.n_columns
        for position, (row, column) in enumerate(cells):
            assert position == column  # symbol j lives in column j
            assert (row, column) not in seen
            seen[(row, column)] = k
    assert len(seen) == config.payload_rows * config.n_columns
    for (row, column), k in seen.items():
        assert layout.codeword_of_cell(row, column) == k


class TestBaselineLayout:
    def test_codewords_are_rows(self, config):
        layout = BaselineLayout(config)
        assert layout.codeword_cells(2) == [(2, c) for c in range(40)]

    def test_partition(self, config):
        _assert_partition(BaselineLayout(config), config)

    def test_placement_is_column_major(self, config):
        layout = BaselineLayout(config)
        order = list(layout.placement_order())
        assert order[:6] == [(r, 0) for r in range(6)]
        assert len(order) == config.data_symbols
        assert all(column < config.data_columns for _, column in order)

    def test_codeword_index_bounds(self, config):
        layout = BaselineLayout(config)
        with pytest.raises(ValueError):
            layout.codeword_cells(6)


class TestGiniLayout:
    def test_partition(self, config):
        _assert_partition(GiniLayout(config), config)

    def test_diagonal_geometry(self, config):
        layout = GiniLayout(config)
        cells = layout.codeword_cells(0)
        rows = [row for row, _ in cells]
        assert rows[:7] == [0, 1, 2, 3, 4, 5, 0]  # wraps around the rows

    def test_every_codeword_touches_every_row_position(self, config):
        """The de-biasing property: each codeword cycles through all rows."""
        layout = GiniLayout(config)
        for k in range(layout.n_codewords):
            rows = {row for row, _ in layout.codeword_cells(k)}
            assert rows == set(range(config.payload_rows))

    def test_erasure_protection_matches_baseline(self, config):
        """One lost column costs every codeword exactly one symbol."""
        layout = GiniLayout(config)
        for column in (0, 17, 39):
            owners = [
                layout.codeword_of_cell(row, column)
                for row in range(config.payload_rows)
            ]
            assert sorted(owners) == list(range(config.payload_rows))

    def test_excluded_rows_stay_row_codewords(self, config):
        layout = GiniLayout(config, excluded_rows=[0, 5])
        assert layout.codeword_cells(0) == [(0, c) for c in range(40)]
        assert layout.codeword_cells(5) == [(5, c) for c in range(40)]
        _assert_partition(layout, config)

    def test_interleaved_group_avoids_excluded_rows(self, config):
        layout = GiniLayout(config, excluded_rows=[0])
        for k in range(1, 6):
            rows = {row for row, _ in layout.codeword_cells(k)}
            assert 0 not in rows

    def test_rejects_all_rows_excluded(self, config):
        with pytest.raises(ValueError):
            GiniLayout(config, excluded_rows=list(range(6)))

    def test_rejects_bad_excluded_row(self, config):
        with pytest.raises(ValueError):
            GiniLayout(config, excluded_rows=[6])


class TestDnaMapperLayout:
    def test_partition(self, config):
        _assert_partition(DnaMapperLayout(config), config)

    def test_row_priority_order(self, config):
        layout = DnaMapperLayout(config)
        # Rows 0..5; reliability: last row, first row, second-to-last, ...
        assert layout.row_priority_order() == [5, 0, 4, 1, 3, 2]

    def test_odd_row_count(self):
        config = MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=5)
        assert DnaMapperLayout(config).row_priority_order() == [4, 0, 3, 1, 2]

    def test_placement_fills_reliable_rows_first(self, config):
        layout = DnaMapperLayout(config)
        order = list(layout.placement_order())
        first_class = order[: config.data_columns]
        assert all(row == 5 for row, _ in first_class)
        second_class = order[config.data_columns: 2 * config.data_columns]
        assert all(row == 0 for row, _ in second_class)

    def test_placement_covers_all_data_cells(self, config):
        layout = DnaMapperLayout(config)
        order = list(layout.placement_order())
        assert len(set(order)) == config.data_symbols


class TestBuildLayout:
    def test_factory(self, config):
        assert isinstance(build_layout("baseline", config), BaselineLayout)
        assert isinstance(build_layout("gini", config), GiniLayout)
        assert isinstance(build_layout("dnamapper", config), DnaMapperLayout)

    def test_unknown_name(self, config):
        with pytest.raises(ValueError):
            build_layout("zigzag", config)
