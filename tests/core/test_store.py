"""Tests for the multi-unit store."""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.core import MatrixConfig, PipelineConfig
from repro.core.ranking import proportional_share_ranking
from repro.core.store import DnaStore

CONFIG = PipelineConfig(
    matrix=MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=8),
    layout="gini",
)


def _sequence_units(image, error_rate, coverage, rng):
    simulator = SequencingSimulator(
        ErrorModel.uniform(error_rate), FixedCoverage(coverage)
    )
    return [simulator.sequence(unit.strands, rng) for unit in image.units]


class TestUnitsNeeded:
    def test_single_unit(self):
        store = DnaStore(CONFIG)
        assert store.units_needed(store.unit_capacity_bits) == 1

    def test_boundary(self):
        store = DnaStore(CONFIG)
        assert store.units_needed(store.unit_capacity_bits + 1) == 2

    def test_empty_payload_needs_one_unit(self):
        assert DnaStore(CONFIG).units_needed(0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DnaStore(CONFIG).units_needed(-1)


class TestRoundtrip:
    def test_single_unit_roundtrip(self, rng):
        store = DnaStore(CONFIG)
        bits = rng.integers(0, 2, store.unit_capacity_bits // 2).astype(np.uint8)
        image = store.encode(bits)
        assert image.n_units == 1
        decoded, report = store.decode(
            _sequence_units(image, 0.0, 1, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_multi_unit_roundtrip(self, rng):
        store = DnaStore(CONFIG)
        bits = rng.integers(0, 2, int(2.5 * store.unit_capacity_bits)).astype(np.uint8)
        image = store.encode(bits)
        assert image.n_units == 3
        assert image.total_strands == 3 * 40
        decoded, report = store.decode(
            _sequence_units(image, 0.0, 1, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_noisy_multi_unit_roundtrip(self, rng):
        store = DnaStore(CONFIG)
        bits = rng.integers(0, 2, int(1.7 * store.unit_capacity_bits)).astype(np.uint8)
        image = store.encode(bits)
        decoded, report = store.decode(
            _sequence_units(image, 0.05, 9, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_global_ranking_roundtrip(self, rng):
        config = PipelineConfig(matrix=CONFIG.matrix, layout="dnamapper")
        store = DnaStore(config)
        n_bits = int(1.5 * store.unit_capacity_bits)
        # Two "files" of different sizes sharing the store.
        sizes = [n_bits // 3, n_bits - n_bits // 3]
        ranking = proportional_share_ranking(sizes)
        bits = rng.integers(0, 2, n_bits).astype(np.uint8)
        image = store.encode(bits, ranking=ranking)
        decoded, report = store.decode(
            _sequence_units(image, 0.0, 1, rng), bits.size, ranking=ranking,
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_priority_striped_evenly(self, rng):
        """Each unit receives an even share of every priority band."""
        store = DnaStore(CONFIG)
        n_bits = 2 * store.unit_capacity_bits
        bits = np.zeros(n_bits, dtype=np.uint8)
        bits[: n_bits // 2] = 1  # the "important half" is all ones
        # Stripe u gets bits u, u+2, u+4, ... so each stripe holds exactly
        # half ones — an even share of the important half.
        for u in range(2):
            assert abs(bits[u::2].mean() - 0.5) < 0.01


class TestValidation:
    def test_wrong_unit_count_rejected(self, rng):
        store = DnaStore(CONFIG)
        bits = rng.integers(0, 2, 2 * store.unit_capacity_bits).astype(np.uint8)
        image = store.encode(bits)
        clusters = _sequence_units(image, 0.0, 1, rng)
        with pytest.raises(ValueError):
            store.decode(clusters[:1], bits.size)

    def test_bad_ranking_rejected(self, rng):
        store = DnaStore(CONFIG)
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        with pytest.raises(ValueError):
            store.encode(bits, ranking=np.arange(50))

    def test_report_aggregation(self, rng):
        store = DnaStore(CONFIG)
        bits = rng.integers(0, 2, 2 * store.unit_capacity_bits).astype(np.uint8)
        image = store.encode(bits)
        clusters = _sequence_units(image, 0.0, 1, rng)
        clusters[0][3] = type(clusters[0][3])(source_index=3, reads=[])
        decoded, report = store.decode(clusters, bits.size)
        assert report.clean  # one erasure is well within nsym=8
        assert report.total_erased_columns == 1
        assert report.total_failed_codewords == 0
        np.testing.assert_array_equal(decoded, bits)
