"""Tests for bit-priority rankings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import (
    identity_ranking,
    invert_ranking,
    oracle_ranking,
    positional_ranking,
    proportional_share_ranking,
)
from repro.media import JpegCodec, synth_image


class TestIdentityRanking:
    def test_is_identity(self):
        np.testing.assert_array_equal(identity_ranking(5), [0, 1, 2, 3, 4])

    def test_empty(self):
        assert identity_ranking(0).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            identity_ranking(-1)

    def test_positional_equals_identity_for_one_file(self):
        np.testing.assert_array_equal(positional_ranking(9), identity_ranking(9))


class TestProportionalShare:
    def test_is_permutation(self):
        rank = proportional_share_ranking([16, 8, 24])
        assert sorted(rank.tolist()) == list(range(48))

    def test_within_file_order_preserved(self):
        rank = proportional_share_ranking([10, 20])
        for start, size in ((0, 10), (10, 20)):
            positions = [np.where(rank == start + j)[0][0] for j in range(size)]
            assert positions == sorted(positions)

    def test_proportional_interleaving(self):
        """A file twice the size gets twice the bits in every prefix."""
        rank = proportional_share_ranking([100, 200])
        prefix = rank[:30]
        from_small = (prefix < 100).sum()
        from_large = (prefix >= 100).sum()
        assert abs(from_large - 2 * from_small) <= 3

    def test_top_priority_segment_first(self):
        rank = proportional_share_ranking([8, 16, 8], top_priority_segments=[0])
        np.testing.assert_array_equal(rank[:8], np.arange(8))

    def test_multiple_top_segments_in_order(self):
        rank = proportional_share_ranking([4, 4, 4], top_priority_segments=[2, 0])
        np.testing.assert_array_equal(rank[:4], [8, 9, 10, 11])
        np.testing.assert_array_equal(rank[4:8], [0, 1, 2, 3])

    def test_empty_segments_skipped(self):
        rank = proportional_share_ranking([0, 6, 0])
        assert sorted(rank.tolist()) == list(range(6))

    def test_no_segments(self):
        assert proportional_share_ranking([]).size == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            proportional_share_ranking([-1])

    def test_rejects_bad_top_index(self):
        with pytest.raises(ValueError):
            proportional_share_ranking([4], top_priority_segments=[1])

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 60), min_size=1, max_size=6))
    def test_always_a_permutation(self, sizes):
        rank = proportional_share_ranking(sizes)
        assert sorted(rank.tolist()) == list(range(sum(sizes)))


class TestInvertRanking:
    @given(st.integers(0, 200))
    def test_inverse_property(self, n):
        rng = np.random.default_rng(n)
        rank = rng.permutation(n)
        inverse = invert_ranking(rank)
        np.testing.assert_array_equal(rank[inverse], np.arange(n))
        np.testing.assert_array_equal(inverse[rank], np.arange(n))


class TestOracleRanking:
    @pytest.fixture(scope="class")
    def setup(self):
        codec = JpegCodec(quality=50)
        image = synth_image(24, 24, rng=3)
        return codec, image, codec.encode(image)

    def test_is_permutation(self, setup):
        codec, image, compressed = setup
        rank = oracle_ranking(compressed, codec=codec, original=image)
        assert sorted(rank.tolist()) == list(range(len(compressed) * 8))

    def test_header_bits_rank_high(self, setup):
        """Destroying the header is catastrophic, so header bits must
        dominate the top of the oracle ranking."""
        codec, image, compressed = setup
        rank = oracle_ranking(compressed, codec=codec, original=image)
        top = set(rank[:40].tolist())
        header_bits = set(range(16))  # the magic bytes: guaranteed fatal
        assert len(top & header_bits) >= 8

    def test_progress_callback(self, setup):
        codec, image, compressed = setup
        calls = []
        oracle_ranking(compressed, codec=codec, original=image,
                       progress=lambda done, total: calls.append((done, total)))
        assert calls[-1][0] == calls[-1][1] == len(compressed) * 8
