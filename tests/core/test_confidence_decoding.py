"""Tests for confidence-assisted (soft-erasure) decoding."""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, ReadPool, SequencingSimulator
from repro.consensus import PosteriorReconstructor, TwoWayReconstructor
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=60, nsym=12, payload_rows=8)


def _pipeline(model):
    return DnaStoragePipeline(
        PipelineConfig(matrix=MATRIX, layout="gini"),
        reconstructor=PosteriorReconstructor(channel=model),
    )


class TestReceiveWithConfidence:
    def test_noiseless_flags_nothing(self, rng):
        model = ErrorModel.uniform(0.0)
        pipeline = _pipeline(model)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(model, FixedCoverage(2))
        received = pipeline.receive(
            simulator.sequence(unit.strands, rng), confidence_threshold=0.5
        )
        assert received.cell_erasures == []

    def test_noisy_clusters_flag_cells(self, rng):
        model = ErrorModel.uniform(0.12)
        pipeline = _pipeline(model)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(model, FixedCoverage(4))
        received = pipeline.receive(
            simulator.sequence(unit.strands, rng), confidence_threshold=0.8
        )
        assert len(received.cell_erasures) > 0
        for row, column in received.cell_erasures:
            assert 0 <= row < MATRIX.payload_rows
            assert 0 <= column < MATRIX.n_columns

    def test_threshold_ignored_without_capable_reconstructor(self, rng):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX, layout="gini"),
            reconstructor=TwoWayReconstructor(),
        )
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.1), FixedCoverage(4))
        received = pipeline.receive(
            simulator.sequence(unit.strands, rng), confidence_threshold=0.8
        )
        assert received.cell_erasures == []

    def test_roundtrip_still_exact_with_confidence(self, rng):
        model = ErrorModel.uniform(0.05)
        pipeline = _pipeline(model)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(model, FixedCoverage(8))
        received = pipeline.receive(
            simulator.sequence(unit.strands, rng), confidence_threshold=0.7
        )
        decoded, report = pipeline.correct(received, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)


class TestSoftErasureCorrection:
    @pytest.mark.slow
    def test_never_worse_than_plain(self, rng):
        """The fallback guarantees soft erasures cannot lose codewords."""
        model = ErrorModel.uniform(0.10)
        pipeline = _pipeline(model)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        total_plain = total_assisted = 0
        for trial in range(3):
            pool = ReadPool(unit.strands, model, max_coverage=5, rng=trial)
            clusters = pool.clusters_at(5)
            plain = pipeline.receive(clusters)
            _, report_plain = pipeline.correct(plain, bits.size)
            assisted = pipeline.receive(clusters, confidence_threshold=0.75)
            _, report_assisted = pipeline.correct(assisted, bits.size)
            total_plain += len(report_plain.failed_codewords)
            total_assisted += len(report_assisted.failed_codewords)
        assert total_assisted <= total_plain

    def test_soft_erasures_capped_by_budget(self, rng):
        """Even absurd thresholds (flag everything) must not crash or
        exceed the RS erasure capability."""
        model = ErrorModel.uniform(0.08)
        pipeline = _pipeline(model)
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(model, FixedCoverage(6))
        received = pipeline.receive(
            simulator.sequence(unit.strands, rng), confidence_threshold=1.1
        )
        decoded, report = pipeline.correct(received, bits.size)
        assert decoded.shape == (bits.size,)


class TestMinimalConfidenceReconstructor:
    def test_batch_input_falls_back_to_per_cluster_confidence(self, rng):
        """A reconstructor exposing only the scalar
        ``reconstruct_with_confidence`` must work on ReadBatch input: the
        batch confidence path has the same per-cluster fallback as the
        cluster-list path."""

        class MinimalConfidence(TwoWayReconstructor):
            def reconstruct_with_confidence(self, reads, length):
                estimate = self.reconstruct_indices(reads, length)
                return estimate, np.ones(length, dtype=np.float64)

        model = ErrorModel.uniform(0.05)
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX),
            reconstructor=MinimalConfidence(),
        )
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(model, FixedCoverage(8))
        batch = simulator.sequence_batch(unit.strands, rng)
        received = pipeline.receive(batch, confidence_threshold=0.5)
        from_list = pipeline.receive(
            simulator.sequence(unit.strands, rng=0),
            confidence_threshold=0.5,
        )
        assert received.matrix.shape == from_list.matrix.shape
        decoded, report = pipeline.correct(received, bits.size)
        np.testing.assert_array_equal(decoded, bits)
