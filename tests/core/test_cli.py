"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "a.bin").write_bytes(bytes(range(256)) * 3)
    (tmp_path / "b.txt").write_text("dna storage cli test")
    return tmp_path


def _encode(workspace, layout, rng_files=("a.bin", "b.txt")):
    store = workspace / "store.dna"
    code = main([
        "encode", "--layout", layout,
        "--molecules", "120", "--redundancy", "22", "--rows", "16",
        "-o", str(store),
        *[str(workspace / name) for name in rng_files],
    ])
    assert code == 0
    return store


class TestEncode:
    @pytest.mark.parametrize("layout", ["baseline", "gini", "dnamapper"])
    def test_store_file_format(self, workspace, layout):
        store = _encode(workspace, layout)
        lines = store.read_text().splitlines()
        assert lines[0].startswith("#")
        assert len(lines) == 1 + 120
        assert set("".join(lines[1:])) <= set("ACGT")

    def test_missing_input_fails(self, workspace, capsys):
        code = main(["encode", "-o", str(workspace / "x.dna"),
                     str(workspace / "missing.bin")])
        assert code == 1
        assert "not a file" in capsys.readouterr().err

    def test_capacity_overflow_fails(self, workspace, capsys):
        big = workspace / "big.bin"
        big.write_bytes(b"\x00" * 50_000)
        code = main(["encode", "--molecules", "60", "--redundancy", "12",
                     "--rows", "8", "-o", str(workspace / "x.dna"), str(big)])
        assert code == 1
        assert "capacity" in capsys.readouterr().err or True

    def test_fasta_export(self, workspace):
        store = workspace / "store.dna"
        code = main([
            "encode", "--layout", "gini",
            "--molecules", "120", "--redundancy", "22", "--rows", "16",
            "--fasta", "-o", str(store), str(workspace / "a.bin"),
        ])
        assert code == 0
        from repro.files.fasta import read_fasta
        records = read_fasta(workspace / "store.fasta")
        assert len(records) == 120
        store_strands = store.read_text().splitlines()[1:]
        assert [seq for _, seq in records] == store_strands


class TestDecode:
    @pytest.mark.parametrize("layout", ["baseline", "gini", "dnamapper"])
    def test_noiseless_roundtrip(self, workspace, layout):
        store = _encode(workspace, layout)
        out = workspace / "restored"
        code = main(["decode", str(store), "-d", str(out)])
        assert code == 0
        assert (out / "a.bin").read_bytes() == (workspace / "a.bin").read_bytes()
        assert (out / "b.txt").read_text() == (workspace / "b.txt").read_text()

    def test_noisy_roundtrip(self, workspace):
        store = _encode(workspace, "gini")
        out = workspace / "restored"
        code = main(["decode", str(store), "-d", str(out),
                     "--error-rate", "0.05", "--coverage", "10",
                     "--seed", "1"])
        assert code == 0
        assert (out / "a.bin").read_bytes() == (workspace / "a.bin").read_bytes()

    def test_dnamapper_noisy_roundtrip(self, workspace):
        store = _encode(workspace, "dnamapper")
        out = workspace / "restored"
        code = main(["decode", str(store), "-d", str(out),
                     "--error-rate", "0.04", "--coverage", "10",
                     "--seed", "2"])
        assert code == 0
        assert (out / "b.txt").read_text() == (workspace / "b.txt").read_text()

    def test_missing_store_fails(self, workspace):
        assert main(["decode", str(workspace / "nope.dna")]) == 1

    def test_header_required(self, workspace):
        bad = workspace / "bad.dna"
        bad.write_text("ACGT\n")
        assert main(["decode", str(bad)]) == 1


class TestServe:
    def test_labeled_serve_runs_clean(self, capsys):
        code = main(["serve", "--objects", "2", "--repeats", "1",
                     "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "labeled reads" in out
        assert "clean 2/2" in out

    @pytest.mark.parametrize("kind", ["greedy", "lsh"])
    def test_pooled_serve_rides_selected_clusterer(self, capsys, kind):
        code = main(["serve", "--objects", "2", "--repeats", "2",
                     "--pool", "--clusterer", kind, "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"unlabeled pools, {kind} clusterer" in out
        # Both passes answer every request correctly; the second from
        # the cache.
        assert out.count("clean 2/2") == 2
        assert "cache 2/2" in out


class TestServeTelemetry:
    def test_serve_prints_stats_and_health_line(self, capsys):
        code = main(["serve", "--objects", "2", "--repeats", "2",
                     "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        # Per-pass stats: cold pass decodes, warm pass hits the cache.
        assert "pass 1:" in out and "pass 2:" in out
        assert "cache 0/2" in out and "cache 2/2" in out
        assert out.count("clean 2/2") == 2
        # The closing health line carries the SLO verdict.
        assert "health: ok" in out
        assert "req/s" in out and "p99" in out

    def test_serve_writes_event_log(self, tmp_path, capsys):
        from repro.observability import EventLog

        events = tmp_path / "events.jsonl"
        code = main(["serve", "--objects", "2", "--repeats", "1",
                     "--seed", "3", "--events", str(events)])
        assert code == 0
        records = EventLog.load_jsonl(events)
        kinds = {r["event"] for r in records}
        assert {"submit", "coalesce", "decode", "complete"} <= kinds
        completes = [r for r in records if r["event"] == "complete"]
        assert sorted(r["request_id"] for r in completes) == [0, 1]


class TestMetricsCommand:
    def test_exposition_parses_back(self, capsys):
        from repro.observability import parse_prometheus

        code = main(["metrics", "--objects", "2", "--repeats", "2",
                     "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        parsed = parse_prometheus(out)
        assert parsed["counters"]["repro_service_requests"] == 4
        assert parsed["counters"]["repro_service_ticks"] == 2
        timing = parsed["timings"]["repro_service_request_seconds"]
        assert timing["count"] == 4
        assert parsed["histograms"]["repro_service_read_outcomes"] == {
            "clean": 4,
        }

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        code = main(["metrics", "--objects", "2", "--repeats", "1",
                     "--seed", "3", "-o", str(target)])
        assert code == 0
        assert "# TYPE repro_service_requests counter" in target.read_text()
        assert str(target) in capsys.readouterr().out


class TestTopCommand:
    def test_frames_print_health_and_checks(self, capsys):
        code = main(["top", "--objects", "2", "--frames", "2",
                     "--interval", "0", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frame 1/2" in out and "frame 2/2" in out
        assert out.count("health:") == 2
        for check in ("latency", "queue", "failures"):
            assert check in out


class TestReportServiceManifests:
    def _service_manifest(self, path, repeats):
        """Run the serving demo under a recording tracer; save the last
        service.tick manifest it emits."""
        from repro.channel import (
            ErrorModel, FixedCoverage, SequencingSimulator,
        )
        from repro.core import MatrixConfig, PipelineConfig
        from repro.core.store import DnaStore
        from repro.observability import Tracer, use_tracer
        from repro.service import StoreService

        matrix = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=6)
        store = DnaStore(PipelineConfig(matrix=matrix))
        simulator = SequencingSimulator(ErrorModel.uniform(0.01),
                                        FixedCoverage(5))
        service = StoreService(store, cache_capacity=64)
        rng = np.random.default_rng(3)
        for k in range(2):
            bits = rng.integers(0, 2, store.unit_capacity_bits,
                                dtype=np.uint8)
            reads = simulator.sequence_store(store.encode(bits), rng=4 + k)
            service.put(f"obj{k}", reads, bits.size)
        tracer = Tracer()
        with use_tracer(tracer):
            for _ in range(repeats):
                for k in range(2):
                    service.submit(f"obj{k}")
                service.tick()
        manifest = tracer.manifests[-1]
        assert manifest.name == "service.tick"
        manifest.save(path)
        return manifest

    def test_report_renders_one_service_manifest(self, tmp_path, capsys):
        path = tmp_path / "service.json"
        self._service_manifest(path, repeats=1)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Run manifest: service.tick" in out
        assert "service.tick" in out
        assert "service.requests" in out

    def test_report_diffs_two_service_manifests(self, tmp_path, capsys):
        cold = tmp_path / "cold.json"
        warm = tmp_path / "warm.json"
        self._service_manifest(cold, repeats=1)
        self._service_manifest(warm, repeats=2)
        assert main(["report", str(warm), str(cold)]) == 0
        out = capsys.readouterr().out
        assert "# Manifest diff: service.tick -> service.tick" in out
        # The two-pass run answered twice the requests and its second
        # tick hit the decoded-unit cache.
        assert "service.requests" in out
        assert "service.cache_unit_hits" in out
