"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "a.bin").write_bytes(bytes(range(256)) * 3)
    (tmp_path / "b.txt").write_text("dna storage cli test")
    return tmp_path


def _encode(workspace, layout, rng_files=("a.bin", "b.txt")):
    store = workspace / "store.dna"
    code = main([
        "encode", "--layout", layout,
        "--molecules", "120", "--redundancy", "22", "--rows", "16",
        "-o", str(store),
        *[str(workspace / name) for name in rng_files],
    ])
    assert code == 0
    return store


class TestEncode:
    @pytest.mark.parametrize("layout", ["baseline", "gini", "dnamapper"])
    def test_store_file_format(self, workspace, layout):
        store = _encode(workspace, layout)
        lines = store.read_text().splitlines()
        assert lines[0].startswith("#")
        assert len(lines) == 1 + 120
        assert set("".join(lines[1:])) <= set("ACGT")

    def test_missing_input_fails(self, workspace, capsys):
        code = main(["encode", "-o", str(workspace / "x.dna"),
                     str(workspace / "missing.bin")])
        assert code == 1
        assert "not a file" in capsys.readouterr().err

    def test_capacity_overflow_fails(self, workspace, capsys):
        big = workspace / "big.bin"
        big.write_bytes(b"\x00" * 50_000)
        code = main(["encode", "--molecules", "60", "--redundancy", "12",
                     "--rows", "8", "-o", str(workspace / "x.dna"), str(big)])
        assert code == 1
        assert "capacity" in capsys.readouterr().err or True

    def test_fasta_export(self, workspace):
        store = workspace / "store.dna"
        code = main([
            "encode", "--layout", "gini",
            "--molecules", "120", "--redundancy", "22", "--rows", "16",
            "--fasta", "-o", str(store), str(workspace / "a.bin"),
        ])
        assert code == 0
        from repro.files.fasta import read_fasta
        records = read_fasta(workspace / "store.fasta")
        assert len(records) == 120
        store_strands = store.read_text().splitlines()[1:]
        assert [seq for _, seq in records] == store_strands


class TestDecode:
    @pytest.mark.parametrize("layout", ["baseline", "gini", "dnamapper"])
    def test_noiseless_roundtrip(self, workspace, layout):
        store = _encode(workspace, layout)
        out = workspace / "restored"
        code = main(["decode", str(store), "-d", str(out)])
        assert code == 0
        assert (out / "a.bin").read_bytes() == (workspace / "a.bin").read_bytes()
        assert (out / "b.txt").read_text() == (workspace / "b.txt").read_text()

    def test_noisy_roundtrip(self, workspace):
        store = _encode(workspace, "gini")
        out = workspace / "restored"
        code = main(["decode", str(store), "-d", str(out),
                     "--error-rate", "0.05", "--coverage", "10",
                     "--seed", "1"])
        assert code == 0
        assert (out / "a.bin").read_bytes() == (workspace / "a.bin").read_bytes()

    def test_dnamapper_noisy_roundtrip(self, workspace):
        store = _encode(workspace, "dnamapper")
        out = workspace / "restored"
        code = main(["decode", str(store), "-d", str(out),
                     "--error-rate", "0.04", "--coverage", "10",
                     "--seed", "2"])
        assert code == 0
        assert (out / "b.txt").read_text() == (workspace / "b.txt").read_text()

    def test_missing_store_fails(self, workspace):
        assert main(["decode", str(workspace / "nope.dna")]) == 1

    def test_header_required(self, workspace):
        bad = workspace / "bad.dna"
        bad.write_text("ACGT\n")
        assert main(["decode", str(bad)]) == 1


class TestServe:
    def test_labeled_serve_runs_clean(self, capsys):
        code = main(["serve", "--objects", "2", "--repeats", "1",
                     "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "labeled reads" in out
        assert "clean 2/2" in out

    @pytest.mark.parametrize("kind", ["greedy", "lsh"])
    def test_pooled_serve_rides_selected_clusterer(self, capsys, kind):
        code = main(["serve", "--objects", "2", "--repeats", "2",
                     "--pool", "--clusterer", kind, "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"unlabeled pools, {kind} clusterer" in out
        # Both passes answer every request correctly; the second from
        # the cache.
        assert out.count("clean 2/2") == 2
        assert "cache 2/2" in out
