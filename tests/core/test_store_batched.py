"""Differential suite: store-plane batched decode == per-unit reference.

``DnaStore.decode`` normalizes any input form into one spanning
``ReadBatch``, runs **one** consensus batch call over every surviving
cluster of every unit, and parses the whole estimate stack with array
operations (``pipeline.receive_many``). ``DnaStore.decode_units`` is the
frozen per-unit loop it replaced. These tests pin the two byte-identical —
bits and per-unit reports — across layouts, dropout-heavy channels,
global rankings and confidence-threshold decoding, and pin the batched
encoder against the frozen per-cell loop encoder the same way.
"""

import numpy as np
import pytest

from repro.channel import (
    ErrorModel,
    FixedCoverage,
    GammaCoverage,
    ReadBatch,
    ReadPool,
    SequencingSimulator,
)
from repro.consensus import PosteriorReconstructor, TwoWayReconstructor
from repro.core import MatrixConfig, PipelineConfig
from repro.core.ranking import proportional_share_ranking
from repro.core.store import DnaStore

CONFIG = PipelineConfig(
    matrix=MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=8),
    layout="gini",
)


def assert_reports_equal(batched, reference):
    assert len(batched.unit_reports) == len(reference.unit_reports)
    for got, want in zip(batched.unit_reports, reference.unit_reports):
        assert got.erased_columns == want.erased_columns
        assert got.failed_codewords == want.failed_codewords
        assert got.corrected_symbols == want.corrected_symbols


def make_store_case(rng, config=CONFIG, n_units_fraction=3.4, rate=0.05,
                    coverage=8, reconstructor=None):
    store = DnaStore(config, reconstructor=reconstructor)
    bits = rng.integers(
        0, 2, int(n_units_fraction * store.unit_capacity_bits)
    ).astype(np.uint8)
    image = store.encode(bits)
    simulator = SequencingSimulator(
        ErrorModel.uniform(rate), FixedCoverage(coverage)
    )
    batch = simulator.sequence_store(image, rng=rng)
    return store, bits, image, batch


class TestBatchedEncode:
    @pytest.mark.parametrize("layout", ["baseline", "gini", "dnamapper",
                                        "random"])
    def test_encode_matches_loop_reference(self, rng, layout):
        config = PipelineConfig(matrix=CONFIG.matrix, layout=layout)
        store = DnaStore(config)
        bits = rng.integers(0, 2, store.unit_capacity_bits - 11).astype(np.uint8)
        batched = store.pipeline.encode(bits)
        reference = store.pipeline.encode_loop_reference(bits)
        assert batched.strands == reference.strands
        np.testing.assert_array_equal(batched.matrix, reference.matrix)
        assert batched.n_data_bits == reference.n_data_bits

    def test_encode_with_ranking_matches_loop_reference(self, rng):
        pipeline = DnaStore(CONFIG).pipeline
        bits = rng.integers(0, 2, pipeline.capacity_bits // 2).astype(np.uint8)
        ranking = rng.permutation(bits.size)
        batched = pipeline.encode(bits, ranking=ranking)
        reference = pipeline.encode_loop_reference(bits, ranking=ranking)
        assert batched.strands == reference.strands
        np.testing.assert_array_equal(batched.matrix, reference.matrix)

    def test_store_encode_matches_per_unit_loop(self, rng):
        store = DnaStore(CONFIG)
        n_units = 3
        bits = rng.integers(
            0, 2, int(2.5 * store.unit_capacity_bits)
        ).astype(np.uint8)
        image = store.encode(bits)
        assert image.n_units == n_units
        padded = np.zeros(n_units * store.unit_capacity_bits, dtype=np.uint8)
        padded[: bits.size] = bits
        for u, unit in enumerate(image.units):
            reference = store.pipeline.encode_loop_reference(
                padded[u::n_units][: len(range(u, bits.size, n_units))]
            )
            assert unit.strands == reference.strands
            np.testing.assert_array_equal(unit.matrix, reference.matrix)


class TestBatchedDecodeDifferential:
    def test_multi_unit_spanning_batch(self, rng):
        store, bits, _, batch = make_store_case(rng)
        got_bits, got_report = store.decode(batch, bits.size)
        want_bits, want_report = store.decode_units(batch, bits.size)
        np.testing.assert_array_equal(got_bits, want_bits)
        assert_reports_equal(got_report, want_report)

    def test_dropout_heavy(self, rng):
        """Gamma coverage with a low mean loses whole clusters; lost
        clusters, erased columns and invalid strands must agree."""
        store = DnaStore(CONFIG)
        bits = rng.integers(
            0, 2, int(2.2 * store.unit_capacity_bits)
        ).astype(np.uint8)
        image = store.encode(bits)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.12), GammaCoverage(2.0, shape=1.0)
        )
        batch = simulator.sequence_store(image, rng=rng)
        assert batch.lost_clusters().size > 0
        got_bits, got_report = store.decode(batch, bits.size)
        want_bits, want_report = store.decode_units(batch, bits.size)
        np.testing.assert_array_equal(got_bits, want_bits)
        assert_reports_equal(got_report, want_report)
        assert got_report.total_erased_columns > 0

    def test_global_ranking(self, rng):
        config = PipelineConfig(matrix=CONFIG.matrix, layout="dnamapper")
        store = DnaStore(config)
        n_bits = int(1.8 * store.unit_capacity_bits)
        ranking = proportional_share_ranking([n_bits // 4,
                                              n_bits - n_bits // 4])
        bits = rng.integers(0, 2, n_bits).astype(np.uint8)
        image = store.encode(bits, ranking=ranking)
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(8)
        )
        batch = simulator.sequence_store(image, rng=rng)
        got_bits, got_report = store.decode(batch, n_bits, ranking=ranking)
        want_bits, want_report = store.decode_units(
            batch, n_bits, ranking=ranking
        )
        np.testing.assert_array_equal(got_bits, want_bits)
        assert_reports_equal(got_report, want_report)
        np.testing.assert_array_equal(got_bits, bits)

    def test_confidence_threshold(self, rng):
        """Confidence-aware decoding: the batched path's vectorized
        confidence-cell extraction must reproduce the per-unit ladder."""
        store, bits, _, batch = make_store_case(
            rng, rate=0.08, coverage=5,
            reconstructor=PosteriorReconstructor(
                channel=ErrorModel.uniform(0.08)
            ),
        )
        got_bits, got_report = store.decode(
            batch, bits.size, confidence_threshold=0.95
        )
        want_bits, want_report = store.decode_units(
            batch, bits.size, confidence_threshold=0.95
        )
        np.testing.assert_array_equal(got_bits, want_bits)
        assert_reports_equal(got_report, want_report)

    def test_input_forms_equivalent(self, rng):
        """Spanning batch, per-unit batches and per-unit cluster lists
        must all decode identically."""
        store, bits, image, batch = make_store_case(rng, rate=0.06)
        n_columns = CONFIG.matrix.n_columns
        per_unit_batches = [
            batch.select_clusters(u * n_columns, (u + 1) * n_columns)
            for u in range(image.n_units)
        ]
        per_unit_clusters = [b.to_clusters() for b in per_unit_batches]
        spanning, _ = store.decode(batch, bits.size)
        from_batches, _ = store.decode(per_unit_batches, bits.size)
        from_clusters, _ = store.decode(per_unit_clusters, bits.size)
        np.testing.assert_array_equal(spanning, from_batches)
        np.testing.assert_array_equal(spanning, from_clusters)

    def test_single_unit_store(self, rng):
        store, bits, _, batch = make_store_case(rng, n_units_fraction=0.6)
        got_bits, got_report = store.decode(batch, bits.size)
        want_bits, want_report = store.decode_units(batch, bits.size)
        np.testing.assert_array_equal(got_bits, want_bits)
        assert_reports_equal(got_report, want_report)
        np.testing.assert_array_equal(got_bits, bits)

    def test_wrong_cluster_count_rejected(self, rng):
        store, bits, _, batch = make_store_case(rng)
        with pytest.raises(ValueError):
            store.decode(
                batch.select_clusters(0, CONFIG.matrix.n_columns), bits.size
            )
        with pytest.raises(ValueError):
            store.decode_units([batch.to_clusters()], bits.size)


class TestSingleBatchCall:
    def test_store_decode_issues_exactly_one_batch_call(self, rng):
        calls = []

        class CountingTwoWay(TwoWayReconstructor):
            def reconstruct_batch(self, batch, length):
                calls.append(batch.n_clusters)
                return super().reconstruct_batch(batch, length)

        store, bits, image, batch = make_store_case(
            rng, n_units_fraction=4.2, reconstructor=CountingTwoWay()
        )
        assert image.n_units >= 4
        decoded, report = store.decode(batch, bits.size)
        assert len(calls) == 1
        assert calls[0] == batch.drop_lost().n_clusters

    def test_reference_issues_one_call_per_unit(self, rng):
        calls = []

        class CountingTwoWay(TwoWayReconstructor):
            def reconstruct_batch(self, batch, length):
                calls.append(batch.n_clusters)
                return super().reconstruct_batch(batch, length)

        store, bits, image, batch = make_store_case(
            rng, n_units_fraction=4.2, reconstructor=CountingTwoWay()
        )
        store.decode_units(batch, bits.size)
        assert len(calls) == image.n_units


class TestReadPoolForStore:
    def test_pool_spans_all_units_and_decodes(self, rng):
        store = DnaStore(CONFIG)
        bits = rng.integers(
            0, 2, int(2.3 * store.unit_capacity_bits)
        ).astype(np.uint8)
        image = store.encode(bits)
        pool = ReadPool.for_store(
            image, ErrorModel.uniform(0.04), max_coverage=8, rng=rng
        )
        assert len(pool) == image.total_strands
        batch = pool.batch_at(8)
        decoded, report = store.decode(batch, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_nested_prefixes_match_per_unit_reference(self, rng):
        store = DnaStore(CONFIG)
        bits = rng.integers(
            0, 2, int(2.1 * store.unit_capacity_bits)
        ).astype(np.uint8)
        image = store.encode(bits)
        pool = ReadPool.for_store(
            image, ErrorModel.uniform(0.08), max_coverage=6, rng=rng
        )
        for coverage in (2, 4, 6):
            batch = pool.batch_at(coverage)
            got, got_report = store.decode(batch, bits.size)
            want, want_report = store.decode_units(batch, bits.size)
            np.testing.assert_array_equal(got, want)
            assert_reports_equal(got_report, want_report)


class TestConcat:
    def test_concat_rebases_cluster_ids(self, rng):
        pieces = [
            ReadBatch.from_arrays([
                [rng.integers(0, 4, rng.integers(3, 9)).astype(np.uint8)
                 for _ in range(int(k))]
                for k in rng.integers(0, 4, size=5)
            ])
            for _ in range(3)
        ]
        spanning = ReadBatch.concat(pieces)
        assert spanning.n_clusters == 15
        assert spanning.n_reads == sum(p.n_reads for p in pieces)
        offset = 0
        row = 0
        for piece in pieces:
            for c in range(piece.n_clusters):
                for want in piece.reads_of(c):
                    np.testing.assert_array_equal(spanning.read(row), want)
                    assert spanning.cluster_ids[row] == offset + c
                    row += 1
            offset += piece.n_clusters

    def test_concat_of_zero_copy_subbatches_is_tight(self, rng):
        """Concatenating pool sub-batches must copy only the selected
        reads, not the parent buffers."""
        parent = ReadBatch.from_arrays([
            [rng.integers(0, 4, 8).astype(np.uint8) for _ in range(4)]
            for _ in range(6)
        ])
        pieces = [parent.select_clusters(0, 3), parent.select_clusters(3, 6)]
        trimmed = [p.select_prefix(np.full(3, 2)) for p in pieces]
        spanning = ReadBatch.concat(trimmed)
        assert spanning.buffer.size == spanning.lengths.sum()
        assert spanning.n_clusters == 6
        for c in range(3):
            for i, want in enumerate(parent.reads_of(c)[:2]):
                np.testing.assert_array_equal(
                    spanning.reads_of(c)[i], want
                )

    def test_concat_empty(self):
        empty = ReadBatch.concat([])
        assert empty.n_clusters == 0
        assert empty.n_reads == 0
