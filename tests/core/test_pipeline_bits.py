"""Bit-plumbing invariants of the pipeline: symbols, placement, ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=5)


@pytest.fixture
def pipeline():
    return DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="dnamapper"))


class TestBitSymbolPlumbing:
    @settings(max_examples=30)
    @given(st.integers(0, 2**31))
    def test_bits_to_symbols_roundtrip(self, seed):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX))
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
        symbols = pipeline._bits_to_symbols(bits)
        assert symbols.shape == (MATRIX.data_symbols,)
        assert symbols.max() < 256
        np.testing.assert_array_equal(pipeline._symbols_to_bits(symbols), bits)

    def test_msb_first_symbol_packing(self):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX))
        bits = np.zeros(MATRIX.data_bits, dtype=np.uint8)
        bits[0] = 1  # the very first bit is the MSB of symbol 0
        symbols = pipeline._bits_to_symbols(bits)
        assert symbols[0] == 128


class TestPrioritizedBits:
    def test_matches_encode_path(self, pipeline, rng):
        """prioritized_bits(ground-truth matrix) returns the prioritized
        stream that encode() placed."""
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        ranking = rng.permutation(bits.size)
        unit = pipeline.encode(bits, ranking=ranking)
        prioritized = pipeline.prioritized_bits(unit.matrix)
        np.testing.assert_array_equal(prioritized, bits[ranking])

    def test_accepts_received_unit(self, pipeline, rng):
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        received = pipeline.receive(simulator.sequence(unit.strands, rng))
        np.testing.assert_array_equal(
            pipeline.prioritized_bits(received),
            pipeline.prioritized_bits(received.matrix),
        )


class TestUnrankBits:
    def test_inverse_of_ranking(self, pipeline, rng):
        n = 500
        bits = rng.integers(0, 2, n).astype(np.uint8)
        ranking = rng.permutation(n)
        prioritized = np.zeros(pipeline.capacity_bits, dtype=np.uint8)
        prioritized[:n] = bits[ranking]
        recovered = pipeline.unrank_bits(prioritized, n, ranking)
        np.testing.assert_array_equal(recovered, bits)

    def test_none_ranking_is_prefix(self, pipeline, rng):
        prioritized = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        np.testing.assert_array_equal(
            pipeline.unrank_bits(prioritized, 100, None), prioritized[:100]
        )

    def test_validation(self, pipeline):
        full = np.zeros(pipeline.capacity_bits, dtype=np.uint8)
        with pytest.raises(ValueError):
            pipeline.unrank_bits(full, pipeline.capacity_bits + 1, None)
        with pytest.raises(ValueError):
            pipeline.unrank_bits(full, 10, np.arange(5))
