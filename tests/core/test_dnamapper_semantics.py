"""Semantic tests of DnaMapper's placement (the paper's Figure 9).

These decode the *synthesized strands* directly — not via the pipeline's
own inverse — to verify the physical placement contract: the
highest-priority bits must sit at the molecule ends, exactly as Figure 9
prescribes.
"""

import numpy as np
import pytest

from repro.codec import DirectCodec
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.utils.bitio import unpack_uint

MATRIX = MatrixConfig(m=8, n_columns=20, nsym=4, payload_rows=6)


def _strand_symbols(strand):
    """Decode a strand into its index symbol plus payload symbols."""
    bits = DirectCodec().decode(strand)
    symbols = [
        unpack_uint(bits[i * 8: (i + 1) * 8])
        for i in range(len(bits) // 8)
    ]
    return symbols[0], symbols[1:]


class TestFigure9Placement:
    @pytest.fixture
    def pipeline(self):
        return DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX, layout="dnamapper")
        )

    def test_index_at_strand_start(self, pipeline, rng):
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        for column, strand in enumerate(unit.strands):
            index, _ = _strand_symbols(strand)
            assert index == column

    def test_top_priority_bits_in_last_row(self, pipeline):
        """The first 2M bytes of the priority stream occupy the *last*
        payload symbol of each data molecule (Fig 9: P[0..M-1] at the
        bottom row)."""
        m_columns = MATRIX.data_columns
        # Priority symbol q has value q (encode q as the byte value).
        values = (np.arange(MATRIX.data_symbols) % 256).astype(np.uint8)
        bits = np.unpackbits(values)
        unit = pipeline.encode(bits)
        for column in range(m_columns):
            _, payload = _strand_symbols(unit.strands[column])
            # Fig 9: last row holds priority symbols 0..M-1, column-striped.
            assert payload[-1] == column % 256

    def test_second_priority_class_next_to_index(self, pipeline):
        m_columns = MATRIX.data_columns
        values = (np.arange(MATRIX.data_symbols) % 256).astype(np.uint8)
        bits = np.unpackbits(values)
        unit = pipeline.encode(bits)
        for column in range(m_columns):
            _, payload = _strand_symbols(unit.strands[column])
            # Fig 9: the first payload row (right after the index) holds
            # the *second* priority class: symbols M..2M-1.
            assert payload[0] == (m_columns + column) % 256

    def test_lowest_priority_in_middle_rows(self, pipeline):
        values = (np.arange(MATRIX.data_symbols) % 256).astype(np.uint8)
        bits = np.unpackbits(values)
        unit = pipeline.encode(bits)
        m_columns = MATRIX.data_columns
        # With 6 rows, zig-zag priority order is [5, 0, 4, 1, 3, 2]:
        # the *least* reliable row (index 2 of the payload) receives the
        # last priority class, symbols 5M..6M-1.
        for column in range(m_columns):
            _, payload = _strand_symbols(unit.strands[column])
            assert payload[2] == (5 * m_columns + column) % 256

    def test_baseline_differs(self, rng):
        """Sanity: baseline places the first chunk in molecule 0 top-down,
        not across molecule ends."""
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX, layout="baseline")
        )
        values = (np.arange(MATRIX.data_symbols) % 256).astype(np.uint8)
        bits = np.unpackbits(values)
        unit = pipeline.encode(bits)
        _, payload = _strand_symbols(unit.strands[0])
        assert payload == list(range(MATRIX.payload_rows))
