"""The decode hot path must never materialize a DNA string.

``pipeline.receive`` fed a columnar :class:`ReadBatch` (and the batched
consensus underneath it) has to run entirely on index arrays. These tests
poison the base-string converters in every module that imports them and
then drive the hot path — any string round-trip raises immediately.
"""

import sys

import numpy as np
import pytest

from repro.channel import ErrorModel, GammaCoverage, SequencingSimulator
from repro.consensus import PosteriorReconstructor, TwoWayReconstructor
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=8)


def _poison_string_codecs(monkeypatch):
    """Make every imported reference to the string codecs explode."""

    def boom(*args, **kwargs):  # pragma: no cover - should never run
        raise AssertionError("base-string materialized on the decode hot path")

    for name, module in list(sys.modules.items()):
        if not name.startswith("repro"):
            continue
        for attr in ("bases_to_indices", "indices_to_bases"):
            if hasattr(module, attr):
                monkeypatch.setattr(module, attr, boom)


@pytest.fixture
def unit_and_batch():
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX))
    rng = np.random.default_rng(9)
    bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
    unit = pipeline.encode(bits)
    simulator = SequencingSimulator(
        ErrorModel.uniform(0.05), GammaCoverage(8, shape=4)
    )
    batch = simulator.sequence_batch(unit.strands, rng=4)
    return pipeline, bits, batch


class TestNoStringsOnHotPath:
    def test_receive_and_decode_from_batch(self, monkeypatch, unit_and_batch):
        pipeline, bits, batch = unit_and_batch
        _poison_string_codecs(monkeypatch)
        decoded, report = pipeline.decode(batch, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_consensus_batch_entry_point(self, monkeypatch, unit_and_batch):
        _, _, batch = unit_and_batch
        _poison_string_codecs(monkeypatch)
        estimates = TwoWayReconstructor().reconstruct_batch(
            batch.drop_lost(), MATRIX.strand_length
        )
        assert estimates.shape[1] == MATRIX.strand_length

    def test_confidence_receive_from_batch(self, monkeypatch, unit_and_batch):
        pipeline, _, batch = unit_and_batch
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX),
            reconstructor=PosteriorReconstructor(ErrorModel.uniform(0.05)),
        )
        _poison_string_codecs(monkeypatch)
        received = pipeline.receive(batch, confidence_threshold=0.6)
        assert received.matrix.shape == (MATRIX.payload_rows, MATRIX.n_columns)

    def test_channel_engine_itself(self, monkeypatch):
        """Array templates in, batch out — no strings even at generation."""
        rng = np.random.default_rng(1)
        templates = rng.integers(0, 4, size=(20, 50)).astype(np.uint8)
        _poison_string_codecs(monkeypatch)
        from repro.channel import BatchedChannelEngine, FixedCoverage

        engine = BatchedChannelEngine(
            ErrorModel.uniform(0.08), FixedCoverage(6)
        )
        batch = engine.sequence(templates, rng)
        assert batch.n_reads == 120
