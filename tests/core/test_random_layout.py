"""Tests for the random-interleaver ablation layout."""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, ReadCluster, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.core.layout import RandomInterleavedLayout, build_layout


@pytest.fixture
def config():
    return MatrixConfig(m=8, n_columns=30, nsym=6, payload_rows=5)


class TestGeometry:
    def test_every_cell_owned_once(self, config):
        layout = RandomInterleavedLayout(config)
        seen = set()
        for k in range(layout.n_codewords):
            for cell in layout.codeword_cells(k):
                assert cell not in seen
                seen.add(cell)
        assert len(seen) == config.payload_rows * config.n_columns

    def test_data_parity_split_preserved(self, config):
        layout = RandomInterleavedLayout(config)
        for k in range(layout.n_codewords):
            cells = layout.codeword_cells(k)
            assert len(cells) == config.n_columns
            data = cells[: config.data_columns]
            parity = cells[config.data_columns:]
            assert all(c < config.data_columns for _, c in data)
            assert all(c >= config.data_columns for _, c in parity)

    def test_owner_inverse(self, config):
        layout = RandomInterleavedLayout(config)
        for k in range(layout.n_codewords):
            for row, column in layout.codeword_cells(k):
                assert layout.codeword_of_cell(row, column) == k

    def test_deterministic_for_seed(self, config):
        a = RandomInterleavedLayout(config, seed=3)
        b = RandomInterleavedLayout(config, seed=3)
        assert a.codeword_cells(0) == b.codeword_cells(0)

    def test_some_codeword_doubles_up_in_a_column(self, config):
        """The structural defect vs Gini: duplicate columns do occur."""
        layout = RandomInterleavedLayout(config)
        doubles = 0
        for k in range(layout.n_codewords):
            columns = [c for _, c in layout.codeword_cells(k)]
            doubles += len(columns) - len(set(columns))
        assert doubles > 0

    def test_factory(self, config):
        assert isinstance(build_layout("random", config),
                          RandomInterleavedLayout)


class TestPipelineIntegration:
    def test_noiseless_roundtrip(self, config, rng):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=config, layout="random")
        )
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        decoded, report = pipeline.decode(
            simulator.sequence(unit.strands, rng), bits.size
        )
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_full_erasure_budget_often_fails(self, config, rng):
        """Unlike Gini, nsym molecule losses are not guaranteed recoverable."""
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=config, layout="random")
        )
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
        failures = 0
        for trial in range(10):
            clusters = simulator.sequence(unit.strands, rng)
            for column in rng.choice(config.n_columns, config.nsym,
                                     replace=False):
                clusters[column] = ReadCluster(source_index=int(column),
                                               reads=[])
            _, report = pipeline.decode(clusters, bits.size)
            failures += int(not report.clean)
        assert failures > 0
