"""The unified read surface: ReadRequest/ReadResult, wrapper parity.

Pins the API redesign's contract:

* the deprecated ``decode``/``decode_pool``/``decode_units`` wrappers
  warn and stay byte-identical to ``read`` with the equivalent request;
* ``read_many`` coalesces heterogeneous requests (labeled, pooled,
  reference, ranked, thresholded) and each answer is byte-identical to
  serving the request alone;
* the wrappers keep their legacy span/manifest names so existing traces
  and tooling read unchanged.
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.cluster import BatchedGreedyClusterer
from repro.core import (
    MatrixConfig,
    PipelineConfig,
    ReadRequest,
    ReadResult,
)
from repro.core.store import DnaStore
from repro.observability import Tracer, use_tracer

MATRIX = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=6)


@pytest.fixture(scope="module")
def fixture_store():
    return DnaStore(PipelineConfig(matrix=MATRIX))


def sequence(store, seed, units=2, rate=0.01, labeled=True, ranking=False):
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, units * store.unit_capacity_bits - 3,
                        dtype=np.uint8)
    perm = rng.permutation(bits.size) if ranking else None
    image = store.encode(bits, ranking=perm)
    simulator = SequencingSimulator(ErrorModel.uniform(rate),
                                    FixedCoverage(5))
    reads = simulator.sequence_store(image, rng=seed, labeled=labeled)
    return reads, bits, perm


class TestReadResult:
    def test_unpacks_like_the_legacy_tuple(self, fixture_store):
        store = fixture_store
        reads, bits, _ = sequence(store, seed=1)
        result = store.read(ReadRequest(reads, bits.size))
        assert isinstance(result, ReadResult)
        decoded, report = result
        assert decoded is result.bits
        assert report is result.report
        assert result.clean == report.clean
        assert result.cache_hit is False

    def test_object_id_echoed(self, fixture_store):
        store = fixture_store
        reads, bits, _ = sequence(store, seed=2)
        result = store.read(
            ReadRequest(reads, bits.size, object_id="file-7")
        )
        assert result.object_id == "file-7"

    def test_read_many_empty_is_empty(self, fixture_store):
        assert fixture_store.read_many([]) == []


class TestDeprecatedWrappers:
    def test_decode_warns_and_matches_read(self, fixture_store):
        store = fixture_store
        reads, bits, _ = sequence(store, seed=3)
        new = store.read(ReadRequest(reads, bits.size))
        with pytest.warns(DeprecationWarning, match="DnaStore.decode is"):
            old_bits, old_report = store.decode(reads, bits.size)
        np.testing.assert_array_equal(old_bits, new.bits)
        assert old_report.clean == new.report.clean

    def test_decode_pool_warns_and_matches_read(self, fixture_store):
        store = fixture_store
        pool, bits, _ = sequence(store, seed=4, labeled=False)
        new = store.read(ReadRequest(pool, bits.size, pool=True))
        with pytest.warns(DeprecationWarning, match="decode_pool"):
            old_bits, old_report = store.decode_pool(pool, bits.size)
        np.testing.assert_array_equal(old_bits, new.bits)
        assert old_report.clean == new.report.clean

    def test_decode_units_warns_and_matches_reference_read(
        self, fixture_store
    ):
        store = fixture_store
        reads, bits, _ = sequence(store, seed=5)
        new = store.read(ReadRequest(reads, bits.size, reference=True))
        with pytest.warns(DeprecationWarning, match="decode_units"):
            old_bits, old_report = store.decode_units(reads, bits.size)
        np.testing.assert_array_equal(old_bits, new.bits)
        assert old_report.clean == new.report.clean

    def test_ranking_and_threshold_parity(self, fixture_store):
        store = fixture_store
        reads, bits, perm = sequence(store, seed=6, ranking=True)
        new = store.read(ReadRequest(
            reads, bits.size, ranking=perm, confidence_threshold=None,
        ))
        with pytest.warns(DeprecationWarning):
            old_bits, _ = store.decode(reads, bits.size, ranking=perm)
        np.testing.assert_array_equal(old_bits, new.bits)
        np.testing.assert_array_equal(new.bits, bits)

    def test_wrong_pool_count_still_rejected(self, fixture_store):
        store = fixture_store
        pool, bits, _ = sequence(store, seed=7, labeled=False)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unit pools"):
                store.decode_pool(pool, 3 * store.unit_capacity_bits)

    def test_pooled_request_requires_a_batch(self, fixture_store):
        store = fixture_store
        with pytest.raises(TypeError, match="ReadBatch"):
            store.read(ReadRequest([["ACGT"]], 8, pool=True))


class TestCoalescing:
    def test_read_many_matches_individual_reads(self, fixture_store):
        """The differential bar for the coalescing engine: a mixed
        request list answers byte-identically to one-at-a-time serving."""
        store = fixture_store
        labeled1, bits1, _ = sequence(store, seed=10)
        labeled2, bits2, perm2 = sequence(store, seed=11, ranking=True)
        pool1, bits3, _ = sequence(store, seed=12, labeled=False)
        pool2, bits4, _ = sequence(store, seed=13, labeled=False, units=1)
        ref, bits5, _ = sequence(store, seed=14, units=1)
        requests = [
            ReadRequest(labeled1, bits1.size),
            ReadRequest(labeled2, bits2.size, ranking=perm2),
            ReadRequest(pool1, bits3.size, pool=True),
            ReadRequest(pool2, bits4.size, pool=True),
            ReadRequest(ref, bits5.size, reference=True),
        ]
        coalesced = store.read_many(requests)
        solo = [store.read(request) for request in requests]
        for together, alone in zip(coalesced, solo):
            np.testing.assert_array_equal(together.bits, alone.bits)
        for result, bits in zip(
            coalesced, (bits1, bits2, bits3, bits4, bits5)
        ):
            assert result.clean
            np.testing.assert_array_equal(result.bits, bits)

    def test_read_many_one_consensus_pass_for_labeled(self, fixture_store):
        from repro.consensus import TwoWayReconstructor

        calls = []

        class CountingTwoWay(TwoWayReconstructor):
            def reconstruct_batch(self, batch, length):
                calls.append(batch.n_clusters)
                return super().reconstruct_batch(batch, length)

        store = DnaStore(PipelineConfig(matrix=MATRIX),
                         reconstructor=CountingTwoWay())
        payloads = [sequence(store, seed=20 + k, units=1)
                    for k in range(5)]
        calls.clear()
        results = store.read_many([
            ReadRequest(reads, bits.size) for reads, bits, _ in payloads
        ])
        assert len(calls) == 1
        for result, (_, bits, _) in zip(results, payloads):
            np.testing.assert_array_equal(result.bits, bits)

    def test_distinct_thresholds_group_into_separate_passes(self):
        """Confidence thresholds are a per-receive-pass knob: two
        distinct values mean two consensus passes, not a wrong merge."""
        from repro.consensus import PosteriorReconstructor

        calls = []

        class CountingPosterior(PosteriorReconstructor):
            def reconstruct_batch_with_confidence(self, batch, length):
                calls.append(batch.n_clusters)
                return super().reconstruct_batch_with_confidence(
                    batch, length
                )

        store = DnaStore(PipelineConfig(matrix=MATRIX),
                         reconstructor=CountingPosterior())
        reads1, bits1, _ = sequence(store, seed=30, units=1)
        reads2, bits2, _ = sequence(store, seed=31, units=1)
        calls.clear()
        results = store.read_many([
            ReadRequest(reads1, bits1.size, confidence_threshold=0.6),
            ReadRequest(reads2, bits2.size, confidence_threshold=0.9),
        ])
        assert len(calls) == 2
        np.testing.assert_array_equal(results[0].bits, bits1)
        np.testing.assert_array_equal(results[1].bits, bits2)


class TestSpanAndManifestCompatibility:
    def test_read_emits_store_read_manifest(self, fixture_store):
        store = fixture_store
        reads, bits, _ = sequence(store, seed=40)
        tracer = Tracer()
        with use_tracer(tracer):
            store.read(ReadRequest(reads, bits.size))
        assert [m.name for m in tracer.manifests] == ["store.read"]
        assert "store.read" in tracer.manifests[0].stages

    def test_read_many_emits_one_manifest(self, fixture_store):
        store = fixture_store
        reads, bits, _ = sequence(store, seed=41)
        tracer = Tracer()
        with use_tracer(tracer):
            store.read_many([ReadRequest(reads, bits.size)] * 2)
        assert [m.name for m in tracer.manifests] == ["store.read_many"]

    def test_decode_wrapper_keeps_legacy_span_and_manifest(
        self, fixture_store
    ):
        store = fixture_store
        reads, bits, _ = sequence(store, seed=42)
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.warns(DeprecationWarning):
                store.decode(reads, bits.size)
        assert [m.name for m in tracer.manifests] == ["store.decode"]
        stages = tracer.stage_totals()
        assert "store.decode" in stages
        assert "store.read" not in stages
        span = tracer.find("store.decode")
        assert span.attributes["n_units"] == 2
        assert span.attributes["n_data_bits"] == bits.size

    def test_decode_pool_wrapper_keeps_legacy_span_and_manifest(
        self, fixture_store
    ):
        store = fixture_store
        pool, bits, _ = sequence(store, seed=43, labeled=False)
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.warns(DeprecationWarning):
                store.decode_pool(pool, bits.size)
        assert [m.name for m in tracer.manifests] == ["store.decode_pool"]
        span = tracer.find("store.decode_pool")
        assert span.attributes["n_reads"] == pool.n_reads


class TestPooledCoalescingDetail:
    def test_shared_default_clusterer_single_cluster_pools_call(self):
        """Pooled requests without an explicit clusterer share one
        default and one ``cluster_pools`` call."""
        store = DnaStore(PipelineConfig(matrix=MATRIX))
        pool1, bits1, _ = sequence(store, seed=50, labeled=False, units=1)
        pool2, bits2, _ = sequence(store, seed=51, labeled=False, units=1)
        tracer = Tracer()
        with use_tracer(tracer):
            results = store.read_many([
                ReadRequest(pool1, bits1.size, pool=True),
                ReadRequest(pool2, bits2.size, pool=True),
            ])
        assert tracer.stage_totals()["cluster.pools"]["calls"] == 1
        np.testing.assert_array_equal(results[0].bits, bits1)
        np.testing.assert_array_equal(results[1].bits, bits2)

    def test_explicit_clusterer_matches_default(self):
        store = DnaStore(PipelineConfig(matrix=MATRIX))
        pool, bits, _ = sequence(store, seed=52, labeled=False)
        clusterer = BatchedGreedyClusterer.for_strand_length(
            store.pipeline.matrix_config.strand_length
        )
        explicit = store.read(
            ReadRequest(pool, bits.size, pool=True, clusterer=clusterer)
        )
        default = store.read(ReadRequest(pool, bits.size, pool=True))
        np.testing.assert_array_equal(explicit.bits, default.bits)
