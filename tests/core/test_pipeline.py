"""Tests for the end-to-end storage pipeline."""

import numpy as np
import pytest

from repro.channel import (
    ErrorModel,
    FixedCoverage,
    ReadCluster,
    SequencingSimulator,
)
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig


@pytest.fixture
def config(small_matrix_config):
    return PipelineConfig(matrix=small_matrix_config, layout="baseline")


@pytest.fixture
def pipeline(config):
    return DnaStoragePipeline(config)


def _payload(pipeline, rng, slack=0):
    return rng.integers(0, 2, pipeline.capacity_bits - slack).astype(np.uint8)


def _noiseless_clusters(unit, rng):
    simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
    return simulator.sequence(unit.strands, rng)


class TestEncode:
    def test_strand_geometry(self, pipeline, rng):
        unit = pipeline.encode(_payload(pipeline, rng))
        config = pipeline.matrix_config
        assert len(unit.strands) == config.n_columns
        assert all(len(s) == config.strand_length for s in unit.strands)

    def test_capacity_enforced(self, pipeline, rng):
        with pytest.raises(ValueError):
            pipeline.encode(
                rng.integers(0, 2, pipeline.capacity_bits + 1).astype(np.uint8)
            )

    def test_index_occupies_strand_start(self, pipeline, rng):
        unit = pipeline.encode(_payload(pipeline, rng))
        from repro.codec import DirectCodec
        from repro.utils.bitio import unpack_uint
        codec = DirectCodec()
        for column, strand in enumerate(unit.strands):
            bits = codec.decode(strand)
            assert unpack_uint(bits[:8]) == column

    def test_parity_satisfies_rs(self, pipeline, rng):
        from repro.ecc import ReedSolomon
        unit = pipeline.encode(_payload(pipeline, rng))
        config = pipeline.matrix_config
        rs = ReedSolomon(config.m, nsym=config.nsym, n=config.n_columns)
        for row in range(config.payload_rows):
            assert rs.check(unit.matrix[row])  # baseline codewords are rows

    def test_ranking_must_match_length(self, pipeline, rng):
        bits = _payload(pipeline, rng, slack=10)
        with pytest.raises(ValueError):
            pipeline.encode(bits, ranking=np.arange(5))

    def test_partial_fill_pads_with_zeros(self, pipeline, rng):
        bits = _payload(pipeline, rng, slack=64)
        unit = pipeline.encode(bits)
        assert unit.n_data_bits == bits.size


class TestDecodeNoiseless:
    @pytest.mark.parametrize("layout", ["baseline", "gini", "dnamapper"])
    def test_roundtrip(self, small_matrix_config, layout, rng):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=small_matrix_config, layout=layout)
        )
        bits = _payload(pipeline, rng, slack=24)
        unit = pipeline.encode(bits)
        decoded, report = pipeline.decode(_noiseless_clusters(unit, rng), bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_roundtrip_with_ranking(self, pipeline, rng):
        bits = _payload(pipeline, rng, slack=16)
        ranking = rng.permutation(bits.size)
        unit = pipeline.encode(bits, ranking=ranking)
        decoded, _ = pipeline.decode(
            _noiseless_clusters(unit, rng), bits.size, ranking=ranking
        )
        np.testing.assert_array_equal(decoded, bits)

    def test_gini_excluded_rows_roundtrip(self, small_matrix_config, rng):
        pipeline = DnaStoragePipeline(PipelineConfig(
            matrix=small_matrix_config, layout="gini",
            gini_excluded_rows=(0, small_matrix_config.payload_rows - 1),
        ))
        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        decoded, report = pipeline.decode(_noiseless_clusters(unit, rng), bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)


class TestDecodeWithLosses:
    def test_erasures_corrected(self, pipeline, rng):
        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        clusters = _noiseless_clusters(unit, rng)
        for column in (3, 17, 40):  # lose three molecules entirely
            clusters[column] = ReadCluster(source_index=column, reads=[])
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean
        assert sorted(report.erased_columns) == [3, 17, 40]
        np.testing.assert_array_equal(decoded, bits)

    def test_too_many_erasures_fail(self, pipeline, rng):
        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        clusters = _noiseless_clusters(unit, rng)
        for column in range(13):  # nsym = 12: one too many
            clusters[column] = ReadCluster(source_index=column, reads=[])
        decoded, report = pipeline.decode(clusters, bits.size)
        assert not report.clean

    def test_extra_erasure_columns_reduce_effective_redundancy(
        self, pipeline, rng
    ):
        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        clusters = _noiseless_clusters(unit, rng)
        # Sacrificing 8 parity columns leaves effective nsym = 4 ...
        sacrificed = list(range(52, 60))
        for column in (3, 17, 40):
            clusters[column] = ReadCluster(source_index=column, reads=[])
        decoded, report = pipeline.decode(
            clusters, bits.size, extra_erasure_columns=sacrificed
        )
        # ... which still covers 3 real losses + 8 sacrificed erasures = 11 <= 12.
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_noisy_channel_roundtrip(self, pipeline, rng):
        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        simulator = SequencingSimulator(ErrorModel.uniform(0.06), FixedCoverage(10))
        clusters = simulator.sequence(unit.strands, rng)
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_report_erasures_out_of_range_rejected(self, pipeline, rng):
        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        received = pipeline.receive(_noiseless_clusters(unit, rng))
        with pytest.raises(ValueError):
            pipeline.correct(received, bits.size, extra_erasure_columns=[60])


class TestReceive:
    def test_duplicate_index_keeps_first(self, pipeline, rng):
        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        clusters = _noiseless_clusters(unit, rng)
        # Make cluster 5 claim column 4's index by feeding it strand 4.
        clusters[5] = ReadCluster(source_index=5, reads=[unit.strands[4]])
        received = pipeline.receive(clusters)
        assert 4 in received.duplicate_columns
        assert 5 in received.erased_columns

    def test_invalid_index_dropped(self, small_matrix_config, rng):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=small_matrix_config, layout="baseline")
        )
        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        clusters = _noiseless_clusters(unit, rng)
        # An index value of 255 >= n_columns=60 must be rejected.
        bogus = "TTTT" + unit.strands[0][4:]
        clusters[0] = ReadCluster(source_index=0, reads=[bogus])
        received = pipeline.receive(clusters)
        assert received.invalid_strands == 1
        assert 0 in received.erased_columns

    def test_truncated_estimate_dropped_not_crash(self, pipeline, rng):
        """Regression: an estimate whose length is not a whole number of
        symbols used to crash ``_parse_indices`` with an opaque reshape
        ValueError; it must be dropped as unparseable like a bad index."""
        from repro.consensus import TwoWayReconstructor

        class TruncatingTwoWay(TwoWayReconstructor):
            def reconstruct_many_indices(self, clusters, length):
                estimates = list(super().reconstruct_many_indices(
                    clusters, length
                ))
                # Chop one base off the first consensus strand: its
                # length is no longer a multiple of bases-per-symbol.
                estimates[0] = estimates[0][:-1]
                return estimates

        bits = _payload(pipeline, rng)
        unit = pipeline.encode(bits)
        clusters = _noiseless_clusters(unit, rng)
        truncating = DnaStoragePipeline(
            pipeline.config, reconstructor=TruncatingTwoWay()
        )
        received = truncating.receive(clusters)
        assert received.invalid_strands == 1
        assert len(received.erased_columns) == 1


class TestNoEccMode:
    def test_nsym_zero_roundtrip(self, rng):
        config = MatrixConfig(m=8, n_columns=30, nsym=0, payload_rows=6)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=config))
        bits = rng.integers(0, 2, pipeline.capacity_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        decoded, report = pipeline.decode(_noiseless_clusters(unit, rng), bits.size)
        assert report.clean
        np.testing.assert_array_equal(decoded, bits)

    def test_nsym_zero_losses_pass_through(self, rng):
        config = MatrixConfig(m=8, n_columns=30, nsym=0, payload_rows=6)
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=config))
        bits = np.ones(pipeline.capacity_bits, dtype=np.uint8)
        unit = pipeline.encode(bits)
        clusters = _noiseless_clusters(unit, rng)
        clusters[2] = ReadCluster(source_index=2, reads=[])
        decoded, report = pipeline.decode(clusters, bits.size)
        assert report.clean  # no codewords exist to fail
        assert 2 in report.erased_columns
        assert not np.array_equal(decoded, bits)  # the lost column is gone
