"""LSHClusterer contract: constructor validation, edge cases, counters,
and the batch/pool surfaces shared with BatchedGreedyClusterer.

Recovery quality across channels lives in test_recovery.py (the suite is
parametrized over both clusterers); determinism under read-order
shuffles lives in tests/integration/test_determinism.py. Here: the
plumbing.
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.channel.readbatch import ReadBatch
from repro.cluster import (
    BatchedGreedyClusterer,
    LSHClusterer,
    pair_precision_recall,
)
from repro.codec.basemap import random_bases
from repro.observability import Tracer, use_tracer

from tests.cluster.test_batched import clusters_as_strings, pool_of


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            LSHClusterer(threshold=-1)

    def test_bad_q(self):
        with pytest.raises(ValueError, match="q"):
            LSHClusterer(threshold=3, q=0)

    def test_bad_n_bands(self):
        with pytest.raises(ValueError, match="n_bands"):
            LSHClusterer(threshold=3, n_bands=0)

    def test_bad_rows_per_band(self):
        with pytest.raises(ValueError, match="rows_per_band"):
            LSHClusterer(threshold=3, rows_per_band=0)

    def test_bad_n_rescue_bands(self):
        with pytest.raises(ValueError, match="n_rescue_bands"):
            LSHClusterer(threshold=3, n_rescue_bands=-1)

    def test_bad_min_sketch_matches(self):
        with pytest.raises(ValueError, match="min_sketch_matches"):
            LSHClusterer(threshold=3, min_sketch_matches=-1)
        with pytest.raises(ValueError, match="min_sketch_matches"):
            # More matches than minhash rows exist can never be met.
            LSHClusterer(threshold=3, n_bands=2, rows_per_band=2,
                         n_rescue_bands=1, min_sketch_matches=6)

    def test_for_strand_length_quarter_rule(self):
        assert LSHClusterer.for_strand_length(68).threshold == 17
        assert LSHClusterer.for_strand_length(4).threshold == 2
        greedy = BatchedGreedyClusterer.for_strand_length(68)
        assert LSHClusterer.for_strand_length(68).threshold \
            == greedy.threshold


class TestEdgeCases:
    def test_empty_pool(self):
        batch = ReadBatch.from_strings([])
        labeled = LSHClusterer(3).cluster_batch(batch)
        assert labeled.n_clusters == 0 and labeled.n_reads == 0

    def test_single_read(self):
        batch = ReadBatch.from_strings([["ACGTACGTACGT"]])
        labeled = LSHClusterer(3).cluster_batch(batch)
        assert labeled.n_clusters == 1
        assert clusters_as_strings(labeled) == [["ACGTACGTACGT"]]

    def test_all_identical_reads_one_cluster(self):
        batch = ReadBatch.from_strings([["ACGTACGT"] * 7]).pooled()
        labeled = LSHClusterer(0).cluster_batch(batch)
        assert labeled.n_clusters == 1
        assert labeled.coverage_counts()[0] == 7

    def test_all_distant_reads_singleton_clusters(self):
        reads = ["AAAAAAAA", "TTTTTTTT", "GGGGGGGG", "CCCCCCCC"]
        batch = ReadBatch.from_strings([[r] for r in reads]).pooled()
        labeled = LSHClusterer(2).cluster_batch(batch)
        assert labeled.n_clusters == 4

    def test_reads_shorter_than_q_verify_exactly(self):
        """Reads with no q-grams share one sentinel bin per band and
        still go through the exact DP — identical shorts merge, distant
        shorts stay apart."""
        batch = ReadBatch.from_strings(
            [["ACGT", "ACGT", "ACGT", "TTTT"]]
        ).pooled()
        labeled = LSHClusterer(0, q=8).cluster_batch(batch)
        assert labeled.n_clusters == 2
        assert sorted(len(c) for c in clusters_as_strings(labeled)) \
            == [1, 3]

    def test_sketch_filter_can_be_disabled(self, rng):
        strands = [random_bases(40, rng) for _ in range(6)]
        batch = pool_of(strands, rng, error=0.03, coverage=FixedCoverage(4))
        strict = LSHClusterer.for_strand_length(40)
        relaxed = LSHClusterer.for_strand_length(40, min_sketch_matches=0)
        a, n_a = strict.assign(batch)
        b, n_b = relaxed.assign(batch)
        # Disabling the screen only adds DP-verified merges, never
        # removes them; on this easy pool both find the same partition.
        assert n_a == n_b
        assert pair_precision_recall(a, b) == (1.0, 1.0)


class TestRecoverySmoke:
    def test_easy_pool_fully_recovered(self, rng):
        strands = [random_bases(50, rng) for _ in range(12)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.03), FixedCoverage(4)
        )
        labeled = simulator.sequence_batch(strands, rng)
        permutation = rng.permutation(labeled.n_reads)
        pool = labeled.pooled()
        pool = type(pool)(
            pool.buffer, pool.offsets[permutation],
            pool.lengths[permutation], pool.cluster_ids,
            n_clusters=pool.n_clusters,
        )
        assignment, n_clusters = LSHClusterer.for_strand_length(50) \
            .assign(pool)
        precision, recall = pair_precision_recall(
            labeled.cluster_ids[permutation], assignment
        )
        assert precision == 1.0 and recall == 1.0
        assert n_clusters == len(strands)


class TestCounters:
    def test_counters_emitted_under_tracer(self, rng):
        strands = [random_bases(40, rng) for _ in range(8)]
        batch = pool_of(strands, rng, coverage=FixedCoverage(4))
        tracer = Tracer()
        with use_tracer(tracer):
            LSHClusterer.for_strand_length(40).cluster_batch(batch)
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["cluster.reads_in"] == batch.n_reads
        assert counters["cluster.lsh.bins"] > 0
        assert counters["cluster.lsh.candidate_pairs"] \
            >= counters["cluster.lsh.verified_pairs"] > 0
        # The counters live under the same span the greedy path uses.
        assert [root.name for root in tracer.roots] == ["cluster.batch"]

    def test_no_tracer_no_overhead_path(self, rng):
        strands = [random_bases(40, rng) for _ in range(4)]
        batch = pool_of(strands, rng, coverage=FixedCoverage(3))
        labeled = LSHClusterer.for_strand_length(40).cluster_batch(batch)
        assert labeled.n_reads == batch.n_reads


class TestClusterPools:
    def test_pools_cluster_independently(self, rng):
        """The same strand set in two pools must never merge across the
        pool border, and per-pool results equal clustering each pool
        alone."""
        strands = [random_bases(40, rng) for _ in range(6)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(4)
        )
        unit_a = simulator.sequence_batch(strands, rng)
        unit_b = simulator.sequence_batch(strands, rng)
        pool = ReadBatch.concat([unit_a.pooled(rng=rng),
                                 unit_b.pooled(rng=rng)])
        clusterer = LSHClusterer.for_strand_length(40)
        labeled, boundaries = clusterer.cluster_pools(pool)
        assert boundaries[0] == 0 and boundaries[-1] == labeled.n_clusters
        for p in range(2):
            alone = clusterer.cluster_batch(pool.select_clusters(p, p + 1))
            piece = labeled.select_clusters(
                int(boundaries[p]), int(boundaries[p + 1])
            )
            assert clusters_as_strings(piece) == clusters_as_strings(alone)

    def test_grouped_boundaries(self, rng):
        strands = [random_bases(40, rng) for _ in range(4)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(3)
        )
        batch = simulator.sequence_batch(strands, rng)
        grouped, boundaries = LSHClusterer.for_strand_length(40) \
            .cluster_pools(batch, pool_boundaries=np.array([0, 2, 4]))
        first_pool = grouped.select_clusters(0, int(boundaries[1]))
        want = sorted(
            batch.read_string(i) for i in range(*batch.cluster_rows(0))
        ) + sorted(
            batch.read_string(i) for i in range(*batch.cluster_rows(1))
        )
        got = sorted(
            first_pool.read_string(i) for i in range(first_pool.n_reads)
        )
        assert got == sorted(want)

    def test_empty_pool_yields_zero_clusters(self):
        batch = ReadBatch.from_strings([[], ["ACGTACGT", "ACGTACGT"]])
        labeled, boundaries = LSHClusterer(2).cluster_pools(batch)
        assert list(boundaries) == [0, 0, 1]
        assert labeled.n_clusters == 1

    def test_bad_boundaries_rejected(self):
        batch = ReadBatch.from_strings([["ACGT"], ["ACGA"]])
        clusterer = LSHClusterer(2)
        for bad in ([1, 2], [0, 1], [0, 2, 1, 2]):
            with pytest.raises(ValueError):
                clusterer.cluster_pools(
                    batch, pool_boundaries=np.array(bad)
                )
