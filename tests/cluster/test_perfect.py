"""Tests for oracle clustering."""

import pytest

from repro.cluster import perfect_clusters


class TestPerfectClusters:
    def test_groups_by_source(self):
        tagged = [(0, "AA"), (1, "CC"), (0, "AT"), (2, "GG")]
        clusters = perfect_clusters(tagged, n_strands=3)
        assert [c.source_index for c in clusters] == [0, 1, 2]
        assert clusters[0].reads == ["AA", "AT"]
        assert clusters[1].reads == ["CC"]
        assert clusters[2].reads == ["GG"]

    def test_missing_source_yields_empty_cluster(self):
        clusters = perfect_clusters([(0, "AA")], n_strands=2)
        assert clusters[1].is_lost

    def test_preserves_read_order(self):
        tagged = [(0, "A"), (0, "C"), (0, "G")]
        clusters = perfect_clusters(tagged, n_strands=1)
        assert clusters[0].reads == ["A", "C", "G"]

    def test_rejects_out_of_range_source(self):
        with pytest.raises(ValueError):
            perfect_clusters([(5, "AA")], n_strands=2)

    def test_empty_input(self):
        clusters = perfect_clusters([], n_strands=3)
        assert len(clusters) == 3
        assert all(c.is_lost for c in clusters)
