"""Differential suite: BatchedGreedyClusterer == the frozen string-plane
GreedyClusterer (identical cluster assignments), plus batch-plumbing
behaviour the string path has no counterpart for."""

import numpy as np
import pytest

from repro.channel import (
    ErrorModel,
    FixedCoverage,
    GammaCoverage,
    SequencingSimulator,
)
from repro.channel.readbatch import ReadBatch
from repro.cluster import (
    BatchedGreedyClusterer,
    GreedyClusterer,
    ReferenceGreedyClusterer,
)
from repro.codec.basemap import random_bases


def pool_of(strands, rng, error=0.06, coverage=FixedCoverage(6), model=None):
    """An unlabeled, shuffled read pool over the given strands."""
    simulator = SequencingSimulator(
        model or ErrorModel.uniform(error), coverage
    )
    return simulator.sequence_batch(strands, rng).pooled(rng=rng)


def clusters_as_strings(batch):
    """The recovered clusters of a re-labeled batch, as string lists."""
    return [
        [batch.read_string(i) for i in range(*batch.cluster_rows(c))]
        for c in range(batch.n_clusters)
    ]


def assert_same_clustering(batch, labeled, clusterer_args):
    """Both string-plane clusterers and the batched one must agree."""
    reads = [batch.read_string(i) for i in range(batch.n_reads)]
    want = ReferenceGreedyClusterer(*clusterer_args).cluster(reads)
    current = GreedyClusterer(*clusterer_args).cluster(reads)
    assert [c.reads for c in want] == [c.reads for c in current]
    assert clusters_as_strings(labeled) == [c.reads for c in want]
    assert [int(s) for s in labeled.source_indices] \
        == [c.source_index for c in want]


class TestDifferential:
    @pytest.mark.parametrize("threshold,qgram", [
        (12, 3), (12, 0), (12, 1), (5, 3), (0, 3), (30, 4),
    ])
    def test_randomized_pool_matches_reference(self, rng, threshold, qgram):
        strands = [random_bases(50, rng) for _ in range(15)]
        batch = pool_of(strands, rng)
        labeled = BatchedGreedyClusterer(threshold, qgram).cluster_batch(batch)
        assert_same_clustering(batch, labeled, (threshold, qgram))

    @pytest.mark.slow
    def test_larger_noisier_pool_matches_reference(self, rng):
        strands = [random_bases(68, rng) for _ in range(40)]
        batch = pool_of(strands, rng, error=0.1,
                        coverage=GammaCoverage(6, shape=4))
        labeled = BatchedGreedyClusterer(17).cluster_batch(batch)
        assert_same_clustering(batch, labeled, (17,))

    def test_deletion_heavy_pool_matches_reference(self, rng):
        model = ErrorModel(p_insertion=0.01, p_deletion=0.08,
                           p_substitution=0.02)
        strands = [random_bases(60, rng) for _ in range(12)]
        batch = pool_of(strands, rng, model=model)
        labeled = BatchedGreedyClusterer(15).cluster_batch(batch)
        assert_same_clustering(batch, labeled, (15,))

    def test_variable_length_reads_match_reference(self, rng):
        """Mixed designed lengths exercise the length-gap prefilter and
        the sentinel-padded kernels."""
        strands = [random_bases(int(n), rng)
                   for n in rng.integers(5, 60, size=12)]
        batch = pool_of(strands, rng)
        labeled = BatchedGreedyClusterer(10).cluster_batch(batch)
        assert_same_clustering(batch, labeled, (10,))

    def test_reads_shorter_than_qgram_match_reference(self, rng):
        reads = ["AC", "A", "", "ACGT", "ACGA", "AC"]
        batch = ReadBatch.from_strings([[r] for r in reads]).pooled()
        labeled = BatchedGreedyClusterer(2, qgram_size=3).cluster_batch(batch)
        assert_same_clustering(batch, labeled, (2, 3))


class TestEdgeCases:
    def test_empty_pool(self):
        batch = ReadBatch.from_strings([])
        labeled = BatchedGreedyClusterer(3).cluster_batch(batch)
        assert labeled.n_clusters == 0 and labeled.n_reads == 0

    def test_single_read(self):
        batch = ReadBatch.from_strings([["ACGT"]])
        labeled = BatchedGreedyClusterer(3).cluster_batch(batch)
        assert labeled.n_clusters == 1
        assert clusters_as_strings(labeled) == [["ACGT"]]

    def test_all_identical_reads_one_cluster(self):
        batch = ReadBatch.from_strings([["ACGTACGT"] * 7]).pooled()
        labeled = BatchedGreedyClusterer(0).cluster_batch(batch)
        assert labeled.n_clusters == 1
        assert labeled.coverage_counts()[0] == 7

    def test_all_distant_reads_singleton_clusters(self):
        reads = ["AAAAAAAA", "TTTTTTTT", "GGGGGGGG", "CCCCCCCC"]
        batch = ReadBatch.from_strings([[r] for r in reads]).pooled()
        labeled = BatchedGreedyClusterer(2).cluster_batch(batch)
        assert labeled.n_clusters == 4
        assert clusters_as_strings(labeled) == [[r] for r in reads]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedGreedyClusterer(-1)
        with pytest.raises(ValueError):
            BatchedGreedyClusterer(1, qgram_size=-2)

    def test_assign_returns_read_order_ids(self, rng):
        strands = [random_bases(30, rng) for _ in range(5)]
        batch = pool_of(strands, rng, error=0.02)
        clusterer = BatchedGreedyClusterer(8)
        assignment, n_clusters = clusterer.assign(batch)
        assert assignment.shape == (batch.n_reads,)
        assert int(assignment.max()) + 1 == n_clusters
        # First occurrences of each id appear in increasing id order
        # (clusters are numbered by creation).
        _, first = np.unique(assignment, return_index=True)
        assert np.all(np.diff(first[np.argsort(first)]) > 0)
        # Relabeling is exactly a stable regroup of the assignment.
        labeled = clusterer.cluster_batch(batch)
        order = np.argsort(assignment, kind="stable")
        np.testing.assert_array_equal(
            labeled.cluster_ids, assignment[order]
        )

    def test_result_shares_buffer_zero_copy(self, rng):
        strands = [random_bases(30, rng) for _ in range(5)]
        batch = pool_of(strands, rng)
        labeled = BatchedGreedyClusterer(8).cluster_batch(batch)
        assert labeled.buffer is batch.buffer


class TestClusterPools:
    def test_pools_cluster_independently(self, rng):
        """The same strand set in two pools must never merge across the
        pool border, and per-pool results equal clustering each pool
        alone."""
        strands = [random_bases(40, rng) for _ in range(6)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(4)
        )
        unit_a = simulator.sequence_batch(strands, rng)
        unit_b = simulator.sequence_batch(strands, rng)
        pool = ReadBatch.concat([unit_a.pooled(rng=rng),
                                 unit_b.pooled(rng=rng)])
        clusterer = BatchedGreedyClusterer(10)
        labeled, boundaries = clusterer.cluster_pools(pool)
        assert boundaries[0] == 0 and boundaries[-1] == labeled.n_clusters
        for p in range(2):
            alone = clusterer.cluster_batch(
                pool.select_clusters(p, p + 1)
            )
            piece = labeled.select_clusters(
                int(boundaries[p]), int(boundaries[p + 1])
            )
            assert clusters_as_strings(piece) == clusters_as_strings(alone)

    def test_grouped_boundaries(self, rng):
        """Explicit pool boundaries group several input clusters into one
        pool (e.g. a labeled spanning batch plus its unit table)."""
        strands = [random_bases(40, rng) for _ in range(4)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.04), FixedCoverage(3)
        )
        batch = simulator.sequence_batch(strands, rng)
        clusterer = BatchedGreedyClusterer(10)
        grouped, boundaries = clusterer.cluster_pools(
            batch, pool_boundaries=np.array([0, 2, 4])
        )
        # Two pools of two strands each -> the labeled clusters of pool 0
        # hold exactly the reads of input clusters 0-1.
        first_pool = grouped.select_clusters(0, int(boundaries[1]))
        want = sorted(
            batch.read_string(i)
            for i in range(*batch.cluster_rows(0))
        ) + sorted(
            batch.read_string(i)
            for i in range(*batch.cluster_rows(1))
        )
        got = sorted(
            first_pool.read_string(i) for i in range(first_pool.n_reads)
        )
        assert got == sorted(want)

    def test_empty_pool_yields_zero_clusters(self):
        batch = ReadBatch.from_strings([[], ["ACGT", "ACGT"]])
        labeled, boundaries = BatchedGreedyClusterer(2).cluster_pools(batch)
        assert list(boundaries) == [0, 0, 1]
        assert labeled.n_clusters == 1

    def test_bad_boundaries_rejected(self, rng):
        batch = ReadBatch.from_strings([["ACGT"], ["ACGA"]])
        clusterer = BatchedGreedyClusterer(2)
        for bad in ([1, 2], [0, 1], [0, 2, 1, 2]):
            with pytest.raises(ValueError):
                clusterer.cluster_pools(
                    batch, pool_boundaries=np.array(bad)
                )
