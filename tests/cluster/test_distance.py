"""Unit and property tests for edit distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.distance import (
    banded_edit_distance,
    edit_distance,
    edit_distance_indices,
)

DNA = st.text(alphabet="ACGT", max_size=40)


def _reference_levenshtein(a: str, b: str) -> int:
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, 1):
        current = [i]
        for j, char_b in enumerate(b, 1):
            current.append(min(
                previous[j - 1] + (char_a != char_b),
                previous[j] + 1,
                current[-1] + 1,
            ))
        previous = current
    return previous[-1]


class TestEditDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("A", "", 1),
        ("", "ACGT", 4),
        ("ACGT", "ACGT", 0),
        ("ACGT", "AGGT", 1),      # substitution
        ("ACGT", "ACGGT", 1),     # insertion
        ("ACGT", "AGT", 1),       # deletion
        ("GATTACA", "GCATGCT", 4),
    ])
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @given(DNA, DNA)
    def test_matches_reference(self, a, b):
        assert edit_distance(a, b) == _reference_levenshtein(a, b)

    @given(DNA, DNA)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(DNA)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @settings(max_examples=50)
    @given(DNA, DNA, DNA)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    def test_indices_variant(self, rng):
        a = rng.integers(0, 4, 20)
        b = rng.integers(0, 4, 25)
        from repro.codec.basemap import indices_to_bases
        assert edit_distance_indices(a, b) == edit_distance(
            indices_to_bases(a), indices_to_bases(b)
        )


class TestBandedEditDistance:
    @given(DNA, DNA)
    def test_exact_within_band(self, a, b):
        true_distance = _reference_levenshtein(a, b)
        result = banded_edit_distance(a, b, band=8)
        if true_distance <= 8:
            assert result == true_distance
        else:
            assert result > 8

    def test_band_zero_equal_strings(self):
        assert banded_edit_distance("ACGT", "ACGT", band=0) == 0

    def test_band_zero_different_strings(self):
        assert banded_edit_distance("ACGT", "ACGA", band=0) > 0

    def test_length_gap_short_circuit(self):
        assert banded_edit_distance("A" * 30, "A", band=3) == 29

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_edit_distance("A", "A", band=-1)

    def test_certificate_exceeds_band(self):
        # Distance 4 with band 2: any value > 2 is acceptable.
        assert banded_edit_distance("AAAA", "TTTT", band=2) > 2
