"""Unit and property tests for edit distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.distance import (
    banded_edit_distance,
    banded_edit_distance_indices,
    banded_edit_distances_stack,
    edit_distance,
    edit_distance_indices,
)
from repro.codec.basemap import bases_to_indices

DNA = st.text(alphabet="ACGT", max_size=40)


def _reference_levenshtein(a: str, b: str) -> int:
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, 1):
        current = [i]
        for j, char_b in enumerate(b, 1):
            current.append(min(
                previous[j - 1] + (char_a != char_b),
                previous[j] + 1,
                current[-1] + 1,
            ))
        previous = current
    return previous[-1]


class TestEditDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("A", "", 1),
        ("", "ACGT", 4),
        ("ACGT", "ACGT", 0),
        ("ACGT", "AGGT", 1),      # substitution
        ("ACGT", "ACGGT", 1),     # insertion
        ("ACGT", "AGT", 1),       # deletion
        ("GATTACA", "GCATGCT", 4),
    ])
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @given(DNA, DNA)
    def test_matches_reference(self, a, b):
        assert edit_distance(a, b) == _reference_levenshtein(a, b)

    @given(DNA, DNA)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(DNA)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @settings(max_examples=50)
    @given(DNA, DNA, DNA)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    def test_indices_variant(self, rng):
        a = rng.integers(0, 4, 20)
        b = rng.integers(0, 4, 25)
        from repro.codec.basemap import indices_to_bases
        assert edit_distance_indices(a, b) == edit_distance(
            indices_to_bases(a), indices_to_bases(b)
        )


class TestBandedEditDistance:
    @given(DNA, DNA)
    def test_exact_within_band(self, a, b):
        true_distance = _reference_levenshtein(a, b)
        result = banded_edit_distance(a, b, band=8)
        if true_distance <= 8:
            assert result == true_distance
        else:
            assert result > 8

    def test_band_zero_equal_strings(self):
        assert banded_edit_distance("ACGT", "ACGT", band=0) == 0

    def test_band_zero_different_strings(self):
        assert banded_edit_distance("ACGT", "ACGA", band=0) > 0

    def test_length_gap_short_circuit(self):
        assert banded_edit_distance("A" * 30, "A", band=3) == 29

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_edit_distance("A", "A", band=-1)

    def test_certificate_exceeds_band(self):
        # Distance 4 with band 2: any value > 2 is acceptable.
        assert banded_edit_distance("AAAA", "TTTT", band=2) > 2


def _as_indices(strand):
    return (bases_to_indices(strand) if strand
            else np.zeros(0, dtype=np.uint8))


class TestBandedEditDistanceIndices:
    @given(DNA, DNA)
    def test_matches_string_variant(self, a, b):
        for band in (0, 3, 8):
            assert banded_edit_distance_indices(
                _as_indices(a), _as_indices(b), band
            ) == banded_edit_distance(a, b, band)

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_edit_distance_indices(
                _as_indices("A"), _as_indices("A"), -1
            )


class TestBandedEditDistancesStack:
    @staticmethod
    def _stack(strands):
        from repro.channel.readbatch import ReadBatch

        batch = ReadBatch.from_arrays([[_as_indices(s)] for s in strands])
        return batch.padded_matrix()

    @settings(max_examples=30)
    @given(st.lists(st.tuples(DNA, DNA), min_size=1, max_size=12),
           st.integers(min_value=0, max_value=10))
    def test_matches_scalar_banded(self, pairs, band):
        queries, lengths = self._stack([a for a, _ in pairs])
        targets, target_lengths = self._stack([b for _, b in pairs])
        distances = banded_edit_distances_stack(
            queries, lengths, targets, target_lengths, band
        )
        for k, (a, b) in enumerate(pairs):
            true = _reference_levenshtein(a, b)
            if true <= band:
                assert distances[k] == true
            else:
                assert distances[k] > band

    def test_exact_within_band_near_pairs(self, rng):
        """Noisy-copy pairs (the clustering workload) come back exact."""
        from repro.channel import ErrorModel
        from repro.codec.basemap import random_bases

        model = ErrorModel.uniform(0.05)
        originals = [random_bases(50, rng) for _ in range(40)]
        noisy = [model.apply(s, rng) for s in originals]
        queries, lengths = self._stack(noisy)
        targets, target_lengths = self._stack(originals)
        distances = banded_edit_distances_stack(
            queries, lengths, targets, target_lengths, band=25
        )
        for k in range(len(originals)):
            assert distances[k] == _reference_levenshtein(
                noisy[k], originals[k]
            )

    def test_empty_stack(self):
        distances = banded_edit_distances_stack(
            np.zeros((0, 0), dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros((0, 0), dtype=np.int64), np.zeros(0, dtype=np.int64),
            band=3,
        )
        assert distances.shape == (0,)

    def test_misaligned_lengths_rejected(self):
        with pytest.raises(ValueError):
            banded_edit_distances_stack(
                np.zeros((2, 4), dtype=np.int64),
                np.zeros(3, dtype=np.int64),
                np.zeros((2, 4), dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                band=1,
            )

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_edit_distances_stack(
                np.zeros((1, 1), dtype=np.int64),
                np.ones(1, dtype=np.int64),
                np.zeros((1, 1), dtype=np.int64),
                np.ones(1, dtype=np.int64),
                band=-1,
            )
