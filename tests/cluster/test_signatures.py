"""The vectorized q-gram signature kernel vs the frozen per-character loop."""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.channel.readbatch import ReadBatch
from repro.cluster.reference import _qgram_signature as reference_signature
from repro.cluster.greedy import _qgram_signature as greedy_signature
from repro.cluster.signatures import (
    DENSE_SIGNATURE_BYTE_BUDGET,
    batch_signatures,
    batch_signatures_sparse,
    l1_distances,
    qgram_signature,
    rolling_qgram_codes,
)
from repro.codec.basemap import bases_to_indices, random_bases


class TestRollingCodes:
    def test_known_windows(self):
        # ACGT -> windows ACG (0*16+1*4+2=6) and CGT (1*16+2*4+3=27).
        codes = rolling_qgram_codes(bases_to_indices("ACGT"), 3)
        np.testing.assert_array_equal(codes, [6, 27])

    def test_short_input_empty(self):
        assert rolling_qgram_codes(bases_to_indices("AC"), 3).size == 0
        assert rolling_qgram_codes(np.zeros(0, dtype=np.uint8), 2).size == 0

    def test_q_one_is_identity(self):
        idx = bases_to_indices("GATTACA")
        np.testing.assert_array_equal(rolling_qgram_codes(idx, 1), idx)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            rolling_qgram_codes(np.zeros(3, dtype=np.uint8), 0)

    @pytest.mark.parametrize("q", [1, 2, 4, 8])
    def test_matches_per_character_loop(self, rng, q):
        """The sliding-window dot product is byte-identical to the naive
        per-character rolling loop at every q, including the q=8 regime
        the LSH clusterer runs at."""
        flat = rng.integers(0, 4, 200).astype(np.uint8)
        want = np.array(
            [sum(int(flat[i + j]) * 4 ** (q - 1 - j) for j in range(q))
             for i in range(flat.size - q + 1)],
            dtype=np.int64,
        )
        got = rolling_qgram_codes(flat, q)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)


class TestQgramSignature:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    @pytest.mark.parametrize("length", [0, 1, 2, 3, 7, 40, 68])
    def test_matches_reference_loop(self, rng, q, length):
        read = random_bases(length, rng)
        want = reference_signature(read, q)
        got = qgram_signature(bases_to_indices(read), q)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)

    def test_greedy_wrapper_matches_reference(self, rng):
        for length in (0, 1, 2, 5, 50):
            read = random_bases(length, rng)
            np.testing.assert_array_equal(
                greedy_signature(read, 3), reference_signature(read, 3)
            )


class TestBatchSignatures:
    def test_rows_match_single_read_kernel(self, rng):
        lengths = [0, 1, 2, 3, 10, 35, 68]
        reads = [rng.integers(0, 4, n).astype(np.uint8) for n in lengths]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        for q in (1, 2, 3):
            signatures = batch_signatures(batch, q)
            assert signatures.shape == (len(reads), 4**q)
            for i, read in enumerate(reads):
                np.testing.assert_array_equal(
                    signatures[i], qgram_signature(read, q)
                )

    def test_windows_never_straddle_read_boundaries(self):
        # AAA|AAA as two reads must not count the cross-boundary windows
        # a concatenated buffer would contain.
        batch = ReadBatch.from_arrays(
            [[np.zeros(3, dtype=np.uint8)], [np.zeros(3, dtype=np.uint8)]]
        )
        signatures = batch_signatures(batch, 2)
        assert signatures[0, 0] == 2 and signatures[1, 0] == 2
        assert signatures.sum() == 4  # not the 5 windows of AAAAAA

    def test_non_tight_views_match(self, rng):
        """Zero-copy sub-batches (offsets not cumsum) gather correctly."""
        strands = [random_bases(30, rng) for _ in range(8)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.05), FixedCoverage(4)
        )
        pool = simulator.sequence_batch(strands, rng)
        view = pool.select_prefix(np.full(len(strands), 2))
        tight = ReadBatch.from_arrays(
            [view.reads_of(c) for c in range(view.n_clusters)]
        )
        np.testing.assert_array_equal(
            batch_signatures(view, 3), batch_signatures(tight, 3)
        )

    def test_empty_batch(self):
        batch = ReadBatch.from_arrays([])
        assert batch_signatures(batch, 3).shape == (0, 64)

    def test_triple_form(self, rng):
        reads = [rng.integers(0, 4, 12).astype(np.uint8) for _ in range(3)]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        triple = (batch.buffer, batch.offsets, batch.lengths)
        np.testing.assert_array_equal(
            batch_signatures(triple, 2), batch_signatures(batch, 2)
        )

    def test_memory_guard_refuses_large_q(self, rng):
        """A dense q=8 matrix for a realistic pool crosses the byte
        budget — the guard must refuse before allocating."""
        reads = [rng.integers(0, 4, 40).astype(np.uint8)
                 for _ in range(5000)]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        # 5000 reads x 4**8 bins x 4 bytes = 1.3 GB > the 1 GB budget.
        with pytest.raises(ValueError, match="batch_signatures_sparse"):
            batch_signatures(batch, 8)

    def test_memory_guard_explicit_budget(self, rng):
        reads = [rng.integers(0, 4, 10).astype(np.uint8) for _ in range(4)]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        with pytest.raises(ValueError, match="budget"):
            batch_signatures(batch, 3, max_bytes=64)
        # Raising the budget back over the need allows the same call.
        assert batch_signatures(
            batch, 3, max_bytes=DENSE_SIGNATURE_BYTE_BUDGET
        ).shape == (4, 64)


class TestBatchSignaturesSparse:
    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_matches_dense(self, rng, q):
        """The COO triples scatter back to exactly the dense matrix."""
        lengths = [0, 1, 2, 3, 10, 35, 68]
        reads = [rng.integers(0, 4, n).astype(np.uint8) for n in lengths]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        dense = batch_signatures(batch, q)
        read_ids, codes, counts = batch_signatures_sparse(batch, q)
        rebuilt = np.zeros_like(dense)
        rebuilt[read_ids, codes] = counts
        np.testing.assert_array_equal(rebuilt, dense)
        # Every stored cell is a real (nonzero) count.
        assert (counts > 0).all()

    def test_triples_sorted_by_read_then_code(self, rng):
        reads = [rng.integers(0, 4, 30).astype(np.uint8) for _ in range(6)]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        read_ids, codes, _ = batch_signatures_sparse(batch, 2)
        keys = read_ids * 16 + codes
        assert (np.diff(keys) > 0).all()

    def test_large_q_stays_read_sized(self, rng):
        """At q=8 the sparse form holds at most one triple per window —
        the whole point of not materializing the 65536-bin histogram."""
        reads = [rng.integers(0, 4, 68).astype(np.uint8)
                 for _ in range(20)]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        read_ids, codes, counts = batch_signatures_sparse(batch, 8)
        assert read_ids.size <= 20 * (68 - 8 + 1)
        assert int(counts.sum()) == 20 * (68 - 8 + 1)
        assert (codes < 4 ** 8).all()

    def test_non_tight_views_match(self, rng):
        strands = [random_bases(30, rng) for _ in range(8)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.05), FixedCoverage(4)
        )
        pool = simulator.sequence_batch(strands, rng)
        view = pool.select_prefix(np.full(len(strands), 2))
        tight = ReadBatch.from_arrays(
            [view.reads_of(c) for c in range(view.n_clusters)]
        )
        for got, want in zip(batch_signatures_sparse(view, 3),
                             batch_signatures_sparse(tight, 3)):
            np.testing.assert_array_equal(got, want)

    def test_empty_and_short_reads(self):
        batch = ReadBatch.from_arrays([])
        read_ids, codes, counts = batch_signatures_sparse(batch, 3)
        assert read_ids.size == codes.size == counts.size == 0
        short = ReadBatch.from_arrays([[np.zeros(2, dtype=np.uint8)]])
        read_ids, _, _ = batch_signatures_sparse(short, 3)
        assert read_ids.size == 0


class TestL1Distances:
    def test_matches_pairwise_abs_sum(self, rng):
        signatures = rng.integers(0, 9, (10, 64)).astype(np.int32)
        target = rng.integers(0, 9, 64).astype(np.int32)
        got = l1_distances(signatures, target)
        want = [int(np.abs(row - target).sum()) for row in signatures]
        np.testing.assert_array_equal(got, want)

    def test_lower_bounds_edit_distance(self, rng):
        """l1 / (2q) must never exceed the true edit distance (the greedy
        prefilter's correctness condition)."""
        from repro.cluster import edit_distance

        q = 3
        model = ErrorModel.uniform(0.1)
        for _ in range(25):
            a = random_bases(40, rng)
            b = model.apply(a, rng)
            l1 = int(np.abs(
                qgram_signature(bases_to_indices(a), q).astype(np.int64)
                - qgram_signature(bases_to_indices(b), q)
            ).sum())
            assert l1 <= 2 * q * edit_distance(a, b)
