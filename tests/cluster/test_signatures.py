"""The vectorized q-gram signature kernel vs the frozen per-character loop."""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.channel.readbatch import ReadBatch
from repro.cluster.reference import _qgram_signature as reference_signature
from repro.cluster.greedy import _qgram_signature as greedy_signature
from repro.cluster.signatures import (
    batch_signatures,
    l1_distances,
    qgram_signature,
    rolling_qgram_codes,
)
from repro.codec.basemap import bases_to_indices, random_bases


class TestRollingCodes:
    def test_known_windows(self):
        # ACGT -> windows ACG (0*16+1*4+2=6) and CGT (1*16+2*4+3=27).
        codes = rolling_qgram_codes(bases_to_indices("ACGT"), 3)
        np.testing.assert_array_equal(codes, [6, 27])

    def test_short_input_empty(self):
        assert rolling_qgram_codes(bases_to_indices("AC"), 3).size == 0
        assert rolling_qgram_codes(np.zeros(0, dtype=np.uint8), 2).size == 0

    def test_q_one_is_identity(self):
        idx = bases_to_indices("GATTACA")
        np.testing.assert_array_equal(rolling_qgram_codes(idx, 1), idx)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            rolling_qgram_codes(np.zeros(3, dtype=np.uint8), 0)


class TestQgramSignature:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    @pytest.mark.parametrize("length", [0, 1, 2, 3, 7, 40, 68])
    def test_matches_reference_loop(self, rng, q, length):
        read = random_bases(length, rng)
        want = reference_signature(read, q)
        got = qgram_signature(bases_to_indices(read), q)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)

    def test_greedy_wrapper_matches_reference(self, rng):
        for length in (0, 1, 2, 5, 50):
            read = random_bases(length, rng)
            np.testing.assert_array_equal(
                greedy_signature(read, 3), reference_signature(read, 3)
            )


class TestBatchSignatures:
    def test_rows_match_single_read_kernel(self, rng):
        lengths = [0, 1, 2, 3, 10, 35, 68]
        reads = [rng.integers(0, 4, n).astype(np.uint8) for n in lengths]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        for q in (1, 2, 3):
            signatures = batch_signatures(batch, q)
            assert signatures.shape == (len(reads), 4**q)
            for i, read in enumerate(reads):
                np.testing.assert_array_equal(
                    signatures[i], qgram_signature(read, q)
                )

    def test_windows_never_straddle_read_boundaries(self):
        # AAA|AAA as two reads must not count the cross-boundary windows
        # a concatenated buffer would contain.
        batch = ReadBatch.from_arrays(
            [[np.zeros(3, dtype=np.uint8)], [np.zeros(3, dtype=np.uint8)]]
        )
        signatures = batch_signatures(batch, 2)
        assert signatures[0, 0] == 2 and signatures[1, 0] == 2
        assert signatures.sum() == 4  # not the 5 windows of AAAAAA

    def test_non_tight_views_match(self, rng):
        """Zero-copy sub-batches (offsets not cumsum) gather correctly."""
        strands = [random_bases(30, rng) for _ in range(8)]
        simulator = SequencingSimulator(
            ErrorModel.uniform(0.05), FixedCoverage(4)
        )
        pool = simulator.sequence_batch(strands, rng)
        view = pool.select_prefix(np.full(len(strands), 2))
        tight = ReadBatch.from_arrays(
            [view.reads_of(c) for c in range(view.n_clusters)]
        )
        np.testing.assert_array_equal(
            batch_signatures(view, 3), batch_signatures(tight, 3)
        )

    def test_empty_batch(self):
        batch = ReadBatch.from_arrays([])
        assert batch_signatures(batch, 3).shape == (0, 64)

    def test_triple_form(self, rng):
        reads = [rng.integers(0, 4, 12).astype(np.uint8) for _ in range(3)]
        batch = ReadBatch.from_arrays([[r] for r in reads])
        triple = (batch.buffer, batch.offsets, batch.lengths)
        np.testing.assert_array_equal(
            batch_signatures(triple, 2), batch_signatures(batch, 2)
        )


class TestL1Distances:
    def test_matches_pairwise_abs_sum(self, rng):
        signatures = rng.integers(0, 9, (10, 64)).astype(np.int32)
        target = rng.integers(0, 9, 64).astype(np.int32)
        got = l1_distances(signatures, target)
        want = [int(np.abs(row - target).sum()) for row in signatures]
        np.testing.assert_array_equal(got, want)

    def test_lower_bounds_edit_distance(self, rng):
        """l1 / (2q) must never exceed the true edit distance (the greedy
        prefilter's correctness condition)."""
        from repro.cluster import edit_distance

        q = 3
        model = ErrorModel.uniform(0.1)
        for _ in range(25):
            a = random_bases(40, rng)
            b = model.apply(a, rng)
            l1 = int(np.abs(
                qgram_signature(bases_to_indices(a), q).astype(np.int64)
                - qgram_signature(bases_to_indices(b), q)
            ).sum())
            assert l1 <= 2 * q * edit_distance(a, b)
