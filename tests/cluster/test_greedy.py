"""Tests for greedy edit-distance clustering."""

import numpy as np
import pytest

from repro.channel import ErrorModel
from repro.cluster import GreedyClusterer
from repro.codec.basemap import random_bases


class TestGreedyClusterer:
    def test_identical_reads_one_cluster(self):
        clusterer = GreedyClusterer(threshold=3)
        clusters = clusterer.cluster(["ACGTACGT"] * 5)
        assert len(clusters) == 1
        assert clusters[0].coverage == 5

    def test_distant_reads_separate_clusters(self):
        clusterer = GreedyClusterer(threshold=2)
        clusters = clusterer.cluster(["AAAAAAAA", "TTTTTTTT", "GGGGGGGG"])
        assert len(clusters) == 3

    def test_near_reads_merge(self):
        clusterer = GreedyClusterer(threshold=2)
        clusters = clusterer.cluster(["ACGTACGT", "ACGTACGA", "ACGAACGT"])
        assert len(clusters) == 1

    def test_empty_input(self):
        assert GreedyClusterer(threshold=2).cluster([]) == []

    def test_recovers_simulated_clusters(self, rng):
        """Noisy copies of well-separated strands cluster correctly."""
        model = ErrorModel.uniform(0.03)
        strands = [random_bases(60, rng) for _ in range(12)]
        reads = []
        truth = []
        for index, strand in enumerate(strands):
            for _ in range(4):
                reads.append(model.apply(strand, rng))
                truth.append(index)
        order = rng.permutation(len(reads))
        shuffled = [reads[i] for i in order]
        shuffled_truth = [truth[i] for i in order]
        clusterer = GreedyClusterer(threshold=12)
        clusters = clusterer.cluster(shuffled)
        assert len(clusters) == 12
        # Every cluster must be pure (all members share a ground truth id).
        read_to_truth = {read: t for read, t in zip(shuffled, shuffled_truth)}
        for cluster in clusters:
            sources = {read_to_truth[read] for read in cluster.reads}
            assert len(sources) == 1

    def test_qgram_prefilter_equivalent_to_none(self, rng):
        model = ErrorModel.uniform(0.05)
        strands = [random_bases(50, rng) for _ in range(6)]
        reads = [model.apply(s, rng) for s in strands for _ in range(3)]
        with_filter = GreedyClusterer(threshold=10, qgram_size=3).cluster(reads)
        without = GreedyClusterer(threshold=10, qgram_size=0).cluster(reads)
        assert [c.reads for c in with_filter] == [c.reads for c in without]

    def test_validation(self):
        with pytest.raises(ValueError):
            GreedyClusterer(threshold=-1)
        with pytest.raises(ValueError):
            GreedyClusterer(threshold=1, qgram_size=-2)
