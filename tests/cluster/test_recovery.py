"""Clustering correctness under the real channel.

Satellite coverage for the columnar clustering subsystem: pairwise
precision/recall of the recovered clusters against the perfect-cluster
ground truth across error rates and coverages, in the deletion-heavy
regime and under a skewed (`ErrorRateMap`) channel, plus the metric's
own unit behaviour. The ground truth rides along for free: the labeled
batch's ``cluster_ids`` are the truth, the pool permutation is applied
explicitly so truth and recovered labels stay aligned per read.

The channel sweeps run against *both* pool clusterers — the exact
batched greedy scan and the LSH-banded path — with identical bounds:
the quality floor is the contract, whichever engine recovered the
clusters.
"""

import numpy as np
import pytest

from repro.channel import (
    ErrorModel,
    ErrorRateMap,
    FixedCoverage,
    GammaCoverage,
    SequencingSimulator,
)
from repro.channel.readbatch import ReadBatch
from repro.cluster import (
    BatchedGreedyClusterer,
    LSHClusterer,
    pair_precision_recall,
)
from repro.codec.basemap import random_bases

CLUSTERERS = {"greedy": BatchedGreedyClusterer, "lsh": LSHClusterer}


def shuffled_pool(labeled, rng):
    """An unlabeled pool plus the per-read ground truth, aligned."""
    permutation = rng.permutation(labeled.n_reads)
    pool = ReadBatch(
        labeled.buffer,
        labeled.offsets[permutation],
        labeled.lengths[permutation],
        np.zeros(labeled.n_reads, dtype=np.int64),
        n_clusters=1 if labeled.n_reads else 0,
    )
    return pool, labeled.cluster_ids[permutation]


def recover(strands, model, coverage, rng, threshold=None, kind="greedy"):
    simulator = SequencingSimulator(model, coverage)
    labeled = simulator.sequence_batch(strands, rng)
    pool, truth = shuffled_pool(labeled, rng)
    cls = CLUSTERERS[kind]
    clusterer = (cls(threshold) if threshold is not None
                 else cls.for_strand_length(len(strands[0])))
    predicted, n_clusters = clusterer.assign(pool)
    return truth, predicted, n_clusters


class TestPairMetric:
    def test_perfect_clustering_scores_one(self):
        truth = np.array([0, 0, 1, 1, 2])
        precision, recall = pair_precision_recall(truth, truth + 7)
        assert precision == 1.0 and recall == 1.0

    def test_single_merged_cluster_has_full_recall(self):
        truth = np.array([0, 0, 1, 1])
        precision, recall = pair_precision_recall(
            truth, np.zeros(4, dtype=int)
        )
        assert recall == 1.0
        assert precision == pytest.approx(2 / 6)

    def test_singletons_have_full_precision(self):
        truth = np.array([0, 0, 1, 1])
        precision, recall = pair_precision_recall(truth, np.arange(4))
        assert precision == 1.0 and recall == 0.0

    def test_empty_input(self):
        precision, recall = pair_precision_recall(
            np.zeros(0, dtype=int), np.zeros(0, dtype=int)
        )
        assert precision == 1.0 and recall == 1.0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            pair_precision_recall(np.zeros(3, dtype=int),
                                  np.zeros(4, dtype=int))


@pytest.mark.parametrize("kind", ["greedy", "lsh"])
class TestRecoveryAcrossChannels:
    @pytest.mark.parametrize("rate", [0.01, 0.03, 0.06])
    def test_error_rate_sweep(self, rng, rate, kind):
        strands = [random_bases(60, rng) for _ in range(25)]
        truth, predicted, n_clusters = recover(
            strands, ErrorModel.uniform(rate), FixedCoverage(6), rng,
            kind=kind,
        )
        precision, recall = pair_precision_recall(truth, predicted)
        assert precision == 1.0, "distinct strands must never merge"
        assert recall > 0.95
        assert n_clusters >= len(strands)

    @pytest.mark.parametrize("coverage", [2, 5, 10])
    def test_coverage_sweep(self, rng, coverage, kind):
        strands = [random_bases(60, rng) for _ in range(20)]
        truth, predicted, _ = recover(
            strands, ErrorModel.uniform(0.05), FixedCoverage(coverage),
            rng, kind=kind,
        )
        precision, recall = pair_precision_recall(truth, predicted)
        assert precision == 1.0
        assert recall > 0.9

    def test_deletion_heavy_channel(self, rng, kind):
        """The enzymatic-style regime: deletions dominate, so read
        lengths spread — the length-gap prefilter must not split
        clusters."""
        model = ErrorModel(p_insertion=0.005, p_deletion=0.06,
                           p_substitution=0.01)
        strands = [random_bases(60, rng) for _ in range(20)]
        truth, predicted, _ = recover(
            strands, model, GammaCoverage(6, shape=6), rng, kind=kind
        )
        precision, recall = pair_precision_recall(truth, predicted)
        assert precision == 1.0
        assert recall > 0.9

    def test_skewed_rate_map(self, rng, kind):
        """A ramped ErrorRateMap (end-of-strand degradation) keeps
        clusters recoverable: the mean rate matches the uniform case even
        though the tail is much noisier."""
        length = 60
        weights = np.linspace(0.4, 1.6, length)
        model = ErrorRateMap.scaled(ErrorModel.uniform(0.05), weights)
        strands = [random_bases(length, rng) for _ in range(20)]
        truth, predicted, _ = recover(
            strands, model, FixedCoverage(6), rng, kind=kind
        )
        precision, recall = pair_precision_recall(truth, predicted)
        assert precision == 1.0
        assert recall > 0.9

    def test_strand_dropout_does_not_confuse_recovery(self, rng, kind):
        """Gamma coverage drops whole strands; the recovered clustering
        simply contains no reads for them and stays pure."""
        strands = [random_bases(60, rng) for _ in range(30)]
        truth, predicted, _ = recover(
            strands, ErrorModel.uniform(0.04),
            GammaCoverage(3, shape=1.5), rng, kind=kind
        )
        precision, _ = pair_precision_recall(truth, predicted)
        assert precision == 1.0

    def test_tight_threshold_trades_recall_not_precision(self, rng, kind):
        strands = [random_bases(60, rng) for _ in range(15)]
        truth, predicted, _ = recover(
            strands, ErrorModel.uniform(0.08), FixedCoverage(5), rng,
            threshold=4, kind=kind,
        )
        precision, recall = pair_precision_recall(truth, predicted)
        assert precision == 1.0
        assert recall < 1.0  # noisy reads split off at a 4-edit threshold
