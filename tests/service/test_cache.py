"""Decoded-unit LRU cache: ordering, eviction, epochs, invalidation."""

import pytest

from repro.service import DecodedUnitCache


def entry(tag):
    """A stand-in (stripe, report) payload."""
    return (tag, f"report-{tag}")


class TestLookup:
    def test_miss_then_hit(self):
        cache = DecodedUnitCache(capacity=4)
        assert cache.get("a", 0, 0) is None
        cache.put("a", 0, 0, entry("a0"))
        assert cache.get("a", 0, 0) == entry("a0")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_keys_are_object_unit_epoch(self):
        cache = DecodedUnitCache(capacity=8)
        cache.put("a", 0, 0, entry("a0"))
        assert cache.get("a", 1, 0) is None      # other unit
        assert cache.get("b", 0, 0) is None      # other object
        assert cache.get("a", 0, 1) is None      # other epoch
        assert cache.get("a", 0, 0) == entry("a0")

    def test_len_counts_entries(self):
        cache = DecodedUnitCache(capacity=8)
        for u in range(3):
            cache.put("a", u, 0, entry(f"a{u}"))
        assert len(cache) == 3


class TestEviction:
    def test_lru_order(self):
        cache = DecodedUnitCache(capacity=2)
        cache.put("a", 0, 0, entry("a"))
        cache.put("b", 0, 0, entry("b"))
        cache.get("a", 0, 0)                     # refresh a
        cache.put("c", 0, 0, entry("c"))         # evicts b, not a
        assert cache.get("b", 0, 0) is None
        assert cache.get("a", 0, 0) == entry("a")
        assert cache.get("c", 0, 0) == entry("c")
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = DecodedUnitCache(capacity=2)
        cache.put("a", 0, 0, entry("a"))
        cache.put("b", 0, 0, entry("b"))
        cache.put("a", 0, 0, entry("a2"))        # re-put refreshes a
        cache.put("c", 0, 0, entry("c"))         # evicts b
        assert cache.get("a", 0, 0) == entry("a2")
        assert cache.get("b", 0, 0) is None

    def test_capacity_zero_disables_caching(self):
        cache = DecodedUnitCache(capacity=0)
        cache.put("a", 0, 0, entry("a"))
        assert len(cache) == 0
        assert cache.get("a", 0, 0) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DecodedUnitCache(capacity=-1)


class TestInvalidation:
    def test_invalidate_drops_every_unit_of_the_object(self):
        cache = DecodedUnitCache(capacity=8)
        for u in range(3):
            cache.put("a", u, 0, entry(f"a{u}"))
        cache.put("b", 0, 0, entry("b"))
        assert cache.invalidate("a") == 3
        assert len(cache) == 1
        assert cache.get("b", 0, 0) == entry("b")

    def test_invalidate_spans_epochs(self):
        cache = DecodedUnitCache(capacity=8)
        cache.put("a", 0, 0, entry("old"))
        cache.put("a", 0, 1, entry("new"))
        assert cache.invalidate("a") == 2
        assert len(cache) == 0

    def test_clear(self):
        cache = DecodedUnitCache(capacity=8)
        cache.put("a", 0, 0, entry("a"))
        cache.clear()
        assert len(cache) == 0


class TestStats:
    def test_stats_track_every_lookup_and_eviction(self):
        cache = DecodedUnitCache(capacity=2)
        cache.get("a", 0, 0)                 # miss
        cache.put("a", 0, 0, entry("a"))
        cache.get("a", 0, 0)                 # hit
        cache.put("b", 0, 0, entry("b"))
        cache.put("c", 0, 0, entry("c"))     # evicts "a"
        stats = cache.stats()
        assert stats == {
            "size": 2, "capacity": 2, "hits": 1, "misses": 1,
            "evictions": 1, "hit_rate": 0.5,
        }

    def test_hit_rate_defined_before_any_lookup(self):
        assert DecodedUnitCache(capacity=4).stats()["hit_rate"] == 0.0
