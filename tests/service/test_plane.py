"""StoreService: coalescing, dedup, cache residency and invalidation.

The serving plane's contract: a tick is at most one consensus pass and
one RS errata pass however many tickets drain; duplicate requests for
one object decode once; warm-cache reads perform zero pipeline work;
re-putting an object (a store re-encode) invalidates its cached units.
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.consensus import TwoWayReconstructor
from repro.core import MatrixConfig, PipelineConfig
from repro.core.store import DnaStore
from repro.observability import Tracer, use_tracer
from repro.service import StoreService

MATRIX = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=6)


class CountingTwoWay(TwoWayReconstructor):
    """Reconstructor that records every consensus batch call."""

    calls: list = []

    def reconstruct_batch(self, batch, length):
        CountingTwoWay.calls.append(batch.n_clusters)
        return super().reconstruct_batch(batch, length)


def make_store():
    CountingTwoWay.calls = []
    return DnaStore(PipelineConfig(matrix=MATRIX),
                    reconstructor=CountingTwoWay())


def make_objects(store, n_objects, units=1, seed=0, labeled=True):
    """Encode + sequence ``n_objects`` payloads; returns
    ``{object_id: (reads, bits)}``."""
    rng = np.random.default_rng(seed)
    simulator = SequencingSimulator(ErrorModel.uniform(0.01),
                                    FixedCoverage(5))
    objects = {}
    for k in range(n_objects):
        bits = rng.integers(
            0, 2, units * store.unit_capacity_bits - (3 if units > 1 else 0),
            dtype=np.uint8,
        )
        image = store.encode(bits)
        reads = simulator.sequence_store(image, rng=1000 + k,
                                         labeled=labeled)
        objects[f"obj{k}"] = (reads, bits)
    return objects


@pytest.fixture
def served():
    """A store + service + 6 registered single-unit objects."""
    store = make_store()
    objects = make_objects(store, 6)
    service = StoreService(store, cache_capacity=64)
    for oid, (reads, bits) in objects.items():
        service.put(oid, reads, bits.size)
    return store, service, objects


class TestTickBasics:
    def test_empty_tick_returns_empty(self, served):
        _, service, _ = served
        assert service.tick() == []
        assert CountingTwoWay.calls == []

    def test_single_request_round_trips(self, served):
        _, service, objects = served
        service.submit("obj2")
        results = service.tick()
        assert len(results) == 1
        result = results[0]
        assert result.object_id == "obj2"
        assert result.clean and not result.cache_hit
        assert result.seconds > 0.0
        np.testing.assert_array_equal(result.bits, objects["obj2"][1])

    def test_unknown_object_rejected_at_submit(self, served):
        _, service, _ = served
        with pytest.raises(KeyError, match="put"):
            service.submit("nope")

    def test_tick_answers_in_submission_order(self, served):
        _, service, objects = served
        order = ["obj3", "obj0", "obj5", "obj1"]
        for oid in order:
            service.submit(oid)
        results = service.tick()
        assert [r.object_id for r in results] == order
        for result in results:
            np.testing.assert_array_equal(
                result.bits, objects[result.object_id][1]
            )

    def test_batch_window_drains_incrementally(self, served):
        _, service, _ = served
        service.batch_window = 2
        for oid in ("obj0", "obj1", "obj2"):
            service.submit(oid)
        first = service.tick()
        assert [r.object_id for r in first] == ["obj0", "obj1"]
        assert service.queue_depth == 1
        second = service.tick()
        assert [r.object_id for r in second] == ["obj2"]
        assert service.queue_depth == 0

    def test_bad_batch_window_rejected(self, served):
        store, _, _ = served
        with pytest.raises(ValueError, match="positive"):
            StoreService(store, batch_window=0)


class TestCoalescing:
    def test_one_consensus_pass_per_tick(self, served):
        """Six distinct objects, one tick, ONE reconstructor batch call."""
        _, service, objects = served
        for oid in objects:
            service.submit(oid)
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1
        assert len(results) == len(objects)
        assert all(r.clean for r in results)

    def test_duplicates_decode_once_answer_twice(self, served):
        _, service, objects = served
        service.submit("obj4")
        service.submit("obj4")
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(results) == 2
        assert len(CountingTwoWay.calls) == 1
        # One decode's clusters only: a single object's worth.
        assert CountingTwoWay.calls[0] <= MATRIX.n_columns
        for result in results:
            np.testing.assert_array_equal(result.bits, objects["obj4"][1])


class TestCache:
    def test_warm_repeat_bypasses_pipeline_entirely(self, served):
        """The acceptance bar: a warm-cache tick makes ZERO
        reconstruct_batch calls (and zero RS errata calls)."""
        store, service, objects = served
        for oid in objects:
            service.submit(oid)
        service.tick()

        rs = store.pipeline._rs
        rs_calls = []
        original = rs.decode_many

        def counting(words, erasure_table=None):
            rs_calls.append(words.shape[0])
            return original(words, erasure_table)

        CountingTwoWay.calls = []
        rs.decode_many = counting
        try:
            for oid in objects:
                service.submit(oid)
            results = service.tick()
        finally:
            del rs.decode_many
        assert CountingTwoWay.calls == []
        assert rs_calls == []
        assert all(r.cache_hit for r in results)
        for result in results:
            np.testing.assert_array_equal(
                result.bits, objects[result.object_id][1]
            )

    def test_cache_capacity_zero_always_decodes(self, served):
        store, _, objects = served
        service = StoreService(store, cache_capacity=0)
        for oid, (reads, bits) in objects.items():
            service.put(oid, reads, bits.size)
        service.submit("obj0")
        service.tick()
        service.submit("obj0")
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1
        assert not results[0].cache_hit

    def test_reput_invalidates_and_serves_new_content(self, served):
        """Re-encoding an object must not serve stale cached bits."""
        store, service, objects = served
        service.submit("obj1")
        assert not service.tick()[0].cache_hit  # now cached

        replacement = make_objects(store, 1, seed=99)["obj0"]
        new_reads, new_bits = replacement
        service.put("obj1", new_reads, new_bits.size)
        service.submit("obj1")
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1  # decoded fresh, not cached
        assert not results[0].cache_hit
        np.testing.assert_array_equal(results[0].bits, new_bits)

    def test_explicit_invalidate_forces_redecode(self, served):
        _, service, _ = served
        service.submit("obj0")
        service.tick()
        assert service.invalidate("obj0") > 0
        service.submit("obj0")
        CountingTwoWay.calls = []
        assert not service.tick()[0].cache_hit
        assert len(CountingTwoWay.calls) == 1


class TestMultiUnitAndPooled:
    def test_multi_unit_objects_round_trip(self):
        store = make_store()
        objects = make_objects(store, 3, units=2, seed=7)
        service = StoreService(store)
        for oid, (reads, bits) in objects.items():
            service.put(oid, reads, bits.size)
            service.submit(oid)
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1
        for result in results:
            assert result.clean
            np.testing.assert_array_equal(
                result.bits, objects[result.object_id][1]
            )

    def test_pooled_objects_coalesce_with_labeled(self):
        store = make_store()
        labeled = make_objects(store, 2, seed=3)
        pooled = make_objects(store, 2, seed=4, labeled=False)
        service = StoreService(store)
        for oid, (reads, bits) in labeled.items():
            service.put(f"lab-{oid}", reads, bits.size)
            service.submit(f"lab-{oid}")
        for oid, (reads, bits) in pooled.items():
            service.put(f"pool-{oid}", reads, bits.size, pool=True)
            service.submit(f"pool-{oid}")
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1
        expected = {f"lab-{k}": v[1] for k, v in labeled.items()}
        expected.update({f"pool-{k}": v[1] for k, v in pooled.items()})
        for result in results:
            assert result.clean
            np.testing.assert_array_equal(
                result.bits, expected[result.object_id]
            )

    def test_pooled_tick_rides_injected_lsh_clusterer(self):
        """``put(..., clusterer=...)`` threads an LSH clusterer through
        the tick; objects sharing one clusterer share ONE cluster_pools
        call, and the answers stay byte-correct."""
        from repro.cluster import LSHClusterer

        pools_calls = []

        class CountingLSH(LSHClusterer):
            def cluster_pools(self, batch, pool_boundaries=None):
                pools_calls.append(batch.n_reads)
                return super().cluster_pools(batch, pool_boundaries)

        store = make_store()
        pooled = make_objects(store, 2, seed=9, labeled=False)
        clusterer = CountingLSH.for_strand_length(
            store.pipeline.matrix_config.strand_length
        )
        service = StoreService(store)
        for oid, (reads, bits) in pooled.items():
            service.put(oid, reads, bits.size, pool=True,
                        clusterer=clusterer)
            service.submit(oid)
        results = service.tick()
        assert len(results) == 2
        # One coalesced clustering pass over both objects' pools.
        assert len(pools_calls) == 1
        assert pools_calls[0] == sum(
            reads.n_reads for reads, _ in pooled.values()
        )
        for result in results:
            assert result.clean
            np.testing.assert_array_equal(
                result.bits, pooled[result.object_id][1]
            )


class TestTelemetry:
    def test_tick_span_counters_and_manifest(self, served):
        _, service, objects = served
        tracer = Tracer()
        with use_tracer(tracer):
            for oid in objects:
                service.submit(oid)
            service.tick()
            for oid in objects:
                service.submit(oid)
            service.tick()  # warm
        stages = tracer.stage_totals()
        assert stages["service.tick"]["calls"] == 2
        counters = tracer.metrics.snapshot()["counters"]
        n = len(objects)
        assert counters["service.requests"] == 2 * n
        assert counters["service.ticks"] == 2
        assert counters["service.cache_unit_misses"] == n
        assert counters["service.cache_unit_hits"] == n
        assert [m.name for m in tracer.manifests] == [
            "service.tick", "service.tick",
        ]
        manifest = tracer.manifests[0]
        assert "service.tick" in manifest.stages
        span = tracer.roots[0].find("service.tick")
        assert span.attributes["n_requests"] == n
        assert span.attributes["n_objects"] == n
