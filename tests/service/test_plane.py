"""StoreService: coalescing, dedup, cache residency and invalidation.

The serving plane's contract: a tick is at most one consensus pass and
one RS errata pass however many tickets drain; duplicate requests for
one object decode once; warm-cache reads perform zero pipeline work;
re-putting an object (a store re-encode) invalidates its cached units.
"""

import numpy as np
import pytest

from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.consensus import TwoWayReconstructor
from repro.core import MatrixConfig, PipelineConfig
from repro.core.store import DnaStore
from repro.observability import Tracer, use_tracer
from repro.service import StoreService

MATRIX = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=6)


class CountingTwoWay(TwoWayReconstructor):
    """Reconstructor that records every consensus batch call."""

    calls: list = []

    def reconstruct_batch(self, batch, length):
        CountingTwoWay.calls.append(batch.n_clusters)
        return super().reconstruct_batch(batch, length)


def make_store():
    CountingTwoWay.calls = []
    return DnaStore(PipelineConfig(matrix=MATRIX),
                    reconstructor=CountingTwoWay())


def make_objects(store, n_objects, units=1, seed=0, labeled=True):
    """Encode + sequence ``n_objects`` payloads; returns
    ``{object_id: (reads, bits)}``."""
    rng = np.random.default_rng(seed)
    simulator = SequencingSimulator(ErrorModel.uniform(0.01),
                                    FixedCoverage(5))
    objects = {}
    for k in range(n_objects):
        bits = rng.integers(
            0, 2, units * store.unit_capacity_bits - (3 if units > 1 else 0),
            dtype=np.uint8,
        )
        image = store.encode(bits)
        reads = simulator.sequence_store(image, rng=1000 + k,
                                         labeled=labeled)
        objects[f"obj{k}"] = (reads, bits)
    return objects


@pytest.fixture
def served():
    """A store + service + 6 registered single-unit objects."""
    store = make_store()
    objects = make_objects(store, 6)
    service = StoreService(store, cache_capacity=64)
    for oid, (reads, bits) in objects.items():
        service.put(oid, reads, bits.size)
    return store, service, objects


class TestTickBasics:
    def test_empty_tick_returns_empty(self, served):
        _, service, _ = served
        assert service.tick() == []
        assert CountingTwoWay.calls == []

    def test_single_request_round_trips(self, served):
        _, service, objects = served
        service.submit("obj2")
        results = service.tick()
        assert len(results) == 1
        result = results[0]
        assert result.object_id == "obj2"
        assert result.clean and not result.cache_hit
        assert result.seconds > 0.0
        np.testing.assert_array_equal(result.bits, objects["obj2"][1])

    def test_unknown_object_rejected_at_submit(self, served):
        _, service, _ = served
        with pytest.raises(KeyError, match="put"):
            service.submit("nope")

    def test_tick_answers_in_submission_order(self, served):
        _, service, objects = served
        order = ["obj3", "obj0", "obj5", "obj1"]
        for oid in order:
            service.submit(oid)
        results = service.tick()
        assert [r.object_id for r in results] == order
        for result in results:
            np.testing.assert_array_equal(
                result.bits, objects[result.object_id][1]
            )

    def test_batch_window_drains_incrementally(self, served):
        _, service, _ = served
        service.batch_window = 2
        for oid in ("obj0", "obj1", "obj2"):
            service.submit(oid)
        first = service.tick()
        assert [r.object_id for r in first] == ["obj0", "obj1"]
        assert service.queue_depth == 1
        second = service.tick()
        assert [r.object_id for r in second] == ["obj2"]
        assert service.queue_depth == 0

    def test_bad_batch_window_rejected(self, served):
        store, _, _ = served
        with pytest.raises(ValueError, match="positive"):
            StoreService(store, batch_window=0)


class TestCoalescing:
    def test_one_consensus_pass_per_tick(self, served):
        """Six distinct objects, one tick, ONE reconstructor batch call."""
        _, service, objects = served
        for oid in objects:
            service.submit(oid)
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1
        assert len(results) == len(objects)
        assert all(r.clean for r in results)

    def test_duplicates_decode_once_answer_twice(self, served):
        _, service, objects = served
        service.submit("obj4")
        service.submit("obj4")
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(results) == 2
        assert len(CountingTwoWay.calls) == 1
        # One decode's clusters only: a single object's worth.
        assert CountingTwoWay.calls[0] <= MATRIX.n_columns
        for result in results:
            np.testing.assert_array_equal(result.bits, objects["obj4"][1])


class TestCache:
    def test_warm_repeat_bypasses_pipeline_entirely(self, served):
        """The acceptance bar: a warm-cache tick makes ZERO
        reconstruct_batch calls (and zero RS errata calls)."""
        store, service, objects = served
        for oid in objects:
            service.submit(oid)
        service.tick()

        rs = store.pipeline._rs
        rs_calls = []
        original = rs.decode_many

        def counting(words, erasure_table=None):
            rs_calls.append(words.shape[0])
            return original(words, erasure_table)

        CountingTwoWay.calls = []
        rs.decode_many = counting
        try:
            for oid in objects:
                service.submit(oid)
            results = service.tick()
        finally:
            del rs.decode_many
        assert CountingTwoWay.calls == []
        assert rs_calls == []
        assert all(r.cache_hit for r in results)
        for result in results:
            np.testing.assert_array_equal(
                result.bits, objects[result.object_id][1]
            )

    def test_cache_capacity_zero_always_decodes(self, served):
        store, _, objects = served
        service = StoreService(store, cache_capacity=0)
        for oid, (reads, bits) in objects.items():
            service.put(oid, reads, bits.size)
        service.submit("obj0")
        service.tick()
        service.submit("obj0")
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1
        assert not results[0].cache_hit

    def test_reput_invalidates_and_serves_new_content(self, served):
        """Re-encoding an object must not serve stale cached bits."""
        store, service, objects = served
        service.submit("obj1")
        assert not service.tick()[0].cache_hit  # now cached

        replacement = make_objects(store, 1, seed=99)["obj0"]
        new_reads, new_bits = replacement
        service.put("obj1", new_reads, new_bits.size)
        service.submit("obj1")
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1  # decoded fresh, not cached
        assert not results[0].cache_hit
        np.testing.assert_array_equal(results[0].bits, new_bits)

    def test_explicit_invalidate_forces_redecode(self, served):
        _, service, _ = served
        service.submit("obj0")
        service.tick()
        assert service.invalidate("obj0") > 0
        service.submit("obj0")
        CountingTwoWay.calls = []
        assert not service.tick()[0].cache_hit
        assert len(CountingTwoWay.calls) == 1


class TestMultiUnitAndPooled:
    def test_multi_unit_objects_round_trip(self):
        store = make_store()
        objects = make_objects(store, 3, units=2, seed=7)
        service = StoreService(store)
        for oid, (reads, bits) in objects.items():
            service.put(oid, reads, bits.size)
            service.submit(oid)
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1
        for result in results:
            assert result.clean
            np.testing.assert_array_equal(
                result.bits, objects[result.object_id][1]
            )

    def test_pooled_objects_coalesce_with_labeled(self):
        store = make_store()
        labeled = make_objects(store, 2, seed=3)
        pooled = make_objects(store, 2, seed=4, labeled=False)
        service = StoreService(store)
        for oid, (reads, bits) in labeled.items():
            service.put(f"lab-{oid}", reads, bits.size)
            service.submit(f"lab-{oid}")
        for oid, (reads, bits) in pooled.items():
            service.put(f"pool-{oid}", reads, bits.size, pool=True)
            service.submit(f"pool-{oid}")
        CountingTwoWay.calls = []
        results = service.tick()
        assert len(CountingTwoWay.calls) == 1
        expected = {f"lab-{k}": v[1] for k, v in labeled.items()}
        expected.update({f"pool-{k}": v[1] for k, v in pooled.items()})
        for result in results:
            assert result.clean
            np.testing.assert_array_equal(
                result.bits, expected[result.object_id]
            )

    def test_pooled_tick_rides_injected_lsh_clusterer(self):
        """``put(..., clusterer=...)`` threads an LSH clusterer through
        the tick; objects sharing one clusterer share ONE cluster_pools
        call, and the answers stay byte-correct."""
        from repro.cluster import LSHClusterer

        pools_calls = []

        class CountingLSH(LSHClusterer):
            def cluster_pools(self, batch, pool_boundaries=None):
                pools_calls.append(batch.n_reads)
                return super().cluster_pools(batch, pool_boundaries)

        store = make_store()
        pooled = make_objects(store, 2, seed=9, labeled=False)
        clusterer = CountingLSH.for_strand_length(
            store.pipeline.matrix_config.strand_length
        )
        service = StoreService(store)
        for oid, (reads, bits) in pooled.items():
            service.put(oid, reads, bits.size, pool=True,
                        clusterer=clusterer)
            service.submit(oid)
        results = service.tick()
        assert len(results) == 2
        # One coalesced clustering pass over both objects' pools.
        assert len(pools_calls) == 1
        assert pools_calls[0] == sum(
            reads.n_reads for reads, _ in pooled.values()
        )
        for result in results:
            assert result.clean
            np.testing.assert_array_equal(
                result.bits, pooled[result.object_id][1]
            )


class TestTelemetry:
    def test_tick_span_counters_and_manifest(self, served):
        _, service, objects = served
        tracer = Tracer()
        with use_tracer(tracer):
            for oid in objects:
                service.submit(oid)
            service.tick()
            for oid in objects:
                service.submit(oid)
            service.tick()  # warm
        stages = tracer.stage_totals()
        assert stages["service.tick"]["calls"] == 2
        counters = tracer.metrics.snapshot()["counters"]
        n = len(objects)
        assert counters["service.requests"] == 2 * n
        assert counters["service.ticks"] == 2
        assert counters["service.cache_unit_misses"] == n
        assert counters["service.cache_unit_hits"] == n
        assert [m.name for m in tracer.manifests] == [
            "service.tick", "service.tick",
        ]
        manifest = tracer.manifests[0]
        assert "service.tick" in manifest.stages
        span = tracer.roots[0].find("service.tick")
        assert span.attributes["n_requests"] == n
        assert span.attributes["n_objects"] == n


class TestLiveTelemetry:
    """Always-on service stats: no recording tracer anywhere in here."""

    def test_request_ids_are_monotonic_and_echoed(self, served):
        _, service, objects = served
        tickets = [service.submit(oid) for oid in objects]
        assert tickets == list(range(len(objects)))
        results = service.tick()
        assert [r.request_id for r in results] == tickets

    def test_always_on_metrics_without_tracer(self, served):
        _, service, objects = served
        n = len(objects)
        for _ in range(2):
            for oid in objects:
                service.submit(oid)
            service.tick()
        snapshot = service.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["service.submits"] == 2 * n
        assert counters["service.requests"] == 2 * n
        assert counters["service.answers"] == 2 * n
        assert counters["service.ticks"] == 2
        assert counters["service.cache_unit_misses"] == n
        assert counters["service.cache_unit_hits"] == n
        assert snapshot["gauges"]["service.queue_depth"] == 0
        assert snapshot["gauges"]["service.cache_size"] == n
        timing = snapshot["timings"]["service.request_seconds"]
        assert timing["count"] == 2 * n
        assert timing["p99"] >= timing["p50"] > 0
        assert snapshot["timings"]["service.queue_wait_seconds"][
            "count"] == 2 * n
        # One cold coalesced decode -> exactly one decode observation.
        assert snapshot["timings"]["service.decode_seconds"]["count"] == 1
        assert snapshot["histograms"]["service.read_outcomes"] == {
            "clean": 2 * n,
        }

    def test_cache_stats_always_on(self, served):
        _, service, objects = served
        n = len(objects)
        assert service.cache.stats() == {
            "size": 0, "capacity": 64, "hits": 0, "misses": 0,
            "evictions": 0, "hit_rate": 0.0,
        }
        for _ in range(2):
            for oid in objects:
                service.submit(oid)
            service.tick()
        stats = service.cache.stats()
        assert stats["size"] == n
        assert stats["misses"] == n   # cold pass
        assert stats["hits"] == n     # warm pass
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["evictions"] == 0

    def test_eviction_counter_reaches_registry(self, served):
        store, _, objects = served
        service = StoreService(store, cache_capacity=2)
        for oid, (reads, bits) in objects.items():
            service.put(oid, reads, bits.size)
        for oid in objects:  # 6 objects through a 2-entry cache
            service.submit(oid)
        service.tick()
        assert service.cache.stats()["evictions"] > 0
        counters = service.metrics.snapshot()["counters"]
        assert counters["service.cache_evictions"] == \
            service.cache.stats()["evictions"]

    def test_event_log_records_request_lifecycle(self, served):
        _, service, objects = served
        oid = next(iter(objects))
        ticket = service.submit(oid)
        service.tick()
        service.submit(oid)
        service.tick()  # warm: no decode event this time

        submits = service.events.records("submit")
        assert submits[0]["request_id"] == ticket
        assert submits[0]["object_id"] == oid
        assert submits[0]["queue_depth"] == 1

        coalesces = service.events.records("coalesce")
        assert [e["tick"] for e in coalesces] == [0, 1]
        assert coalesces[0] == {
            **coalesces[0], "n_requests": 1, "n_objects": 1,
        }

        decodes = service.events.records("decode")
        assert len(decodes) == 1
        assert decodes[0]["object_id"] == oid
        assert decodes[0]["seconds"] > 0

        assert [e["object_id"] for e in
                service.events.records("cache_hit")] == [oid]

        completes = service.events.records("complete")
        assert len(completes) == 2
        cold, warm = completes
        assert cold["request_id"] == ticket
        assert cold["cache_hit"] is False and warm["cache_hit"] is True
        assert cold["clean"] is True
        assert cold["decode_seconds"] > 0
        assert warm["decode_seconds"] == 0.0
        for record in completes:
            assert record["seconds"] >= record["queue_wait_seconds"]

    def test_event_log_file_sink(self, served, tmp_path):
        from repro.observability import EventLog

        store, _, objects = served
        path = tmp_path / "events.jsonl"
        service = StoreService(store, event_log=EventLog(path=path))
        for oid, (reads, bits) in objects.items():
            service.put(oid, reads, bits.size)
        service.submit(next(iter(objects)))
        service.tick()
        service.events.close()
        kinds = [r["event"] for r in EventLog.load_jsonl(path)]
        assert kinds[0] == "submit"
        assert "complete" in kinds

    def test_health_snapshot_and_verdict_flip(self, served):
        from repro.observability import SLOThresholds

        _, service, objects = served
        for _ in range(2):
            for oid in objects:
                service.submit(oid)
            service.tick()
        health = service.health()
        assert health.verdict == "ok"
        assert health.failure_rate == 0.0
        assert health.cache_hit_rate == pytest.approx(0.5)
        assert health.p99_seconds >= health.p50_seconds > 0
        assert health.requests_per_second > 0
        assert health.queue_depth == 0

        # The same service under an impossible SLO flips the verdict —
        # the check evaluates thresholds, not vibes.
        strict = service.health(slo=SLOThresholds(
            degraded_p99_seconds=1e-9, unhealthy_p99_seconds=1e-8,
        ))
        assert strict.checks["latency"] == "unhealthy"
        assert strict.verdict == "unhealthy"

    def test_health_window_forgets_old_latency(self, served):
        _, service, objects = served
        service.window.n_intervals  # sanity: window exists
        for oid in objects:
            service.submit(oid)
        service.tick()
        cold = service.health()           # interval 1: cold decode pass
        for _ in range(12):               # push the cold interval out
            for oid in objects:
                service.submit(oid)
            service.tick()
            service.health()
        warm = service.health()
        assert warm.p99_seconds < cold.p99_seconds
        assert warm.cache_hit_rate > 0.9  # lifetime stats, mostly warm

    def test_null_tracer_registry_untouched_by_serving(self, served):
        from repro.observability import NULL_REGISTRY

        _, service, objects = served
        for oid in objects:
            service.submit(oid)
        service.tick()
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "timings": {},
        }
