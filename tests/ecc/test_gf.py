"""Unit and property tests for GF(2^m) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf import GaloisField


@pytest.fixture(scope="module")
def gf8():
    return GaloisField.get(8)


@pytest.fixture(scope="module")
def gf4():
    return GaloisField.get(4)


class TestConstruction:
    def test_cached_instances(self):
        assert GaloisField.get(8) is GaloisField.get(8)

    def test_unsupported_degree(self):
        with pytest.raises(ValueError, match="unsupported"):
            GaloisField(1)

    @pytest.mark.parametrize("m", [2, 4, 8, 12, 16])
    def test_order(self, m):
        field = GaloisField.get(m)
        assert field.order == 2**m
        assert field.max_value == 2**m - 1

    @pytest.mark.parametrize("m", [2, 3, 4, 8])
    def test_alpha_generates_multiplicative_group(self, m):
        field = GaloisField.get(m)
        seen = set()
        value = 1
        for _ in range(field.max_value):
            seen.add(value)
            value = field.mul(value, 2)  # alpha = x = 2
        assert len(seen) == field.max_value

    def test_repr_mentions_degree(self, gf8):
        assert "2^8" in repr(gf8)


class TestScalarOps:
    def test_add_is_xor(self, gf8):
        assert gf8.add(0b1010, 0b0110) == 0b1100

    def test_mul_by_zero(self, gf8):
        assert gf8.mul(0, 123) == 0
        assert gf8.mul(123, 0) == 0

    def test_mul_by_one(self, gf8):
        for value in (1, 7, 255):
            assert gf8.mul(value, 1) == value

    def test_known_product_gf256(self, gf8):
        # With the 0x11D polynomial, the inverse of 2 is 0x8E:
        # 2 * 0x8E = 0x11C, reduced by 0x11D gives 1.
        assert gf8.mul(0x02, 0x8E) == 0x01

    def test_div_inverse_of_mul(self, gf8):
        product = gf8.mul(77, 199)
        assert gf8.div(product, 199) == 77

    def test_div_by_zero(self, gf8):
        with pytest.raises(ZeroDivisionError):
            gf8.div(5, 0)

    def test_inv(self, gf8):
        for value in (1, 2, 100, 255):
            assert gf8.mul(value, gf8.inv(value)) == 1

    def test_inv_zero(self, gf8):
        with pytest.raises(ZeroDivisionError):
            gf8.inv(0)

    def test_pow_zero_exponent(self, gf8):
        assert gf8.pow(37, 0) == 1
        assert gf8.pow(0, 0) == 1

    def test_pow_negative(self, gf8):
        assert gf8.pow(9, -1) == gf8.inv(9)

    def test_pow_zero_base_negative_exponent(self, gf8):
        with pytest.raises(ZeroDivisionError):
            gf8.pow(0, -2)

    def test_alpha_pow_wraps(self, gf8):
        assert gf8.alpha_pow(0) == 1
        assert gf8.alpha_pow(gf8.max_value) == 1
        assert gf8.alpha_pow(-1) == gf8.inv(2)

    def test_log_alpha(self, gf8):
        for exponent in (0, 5, 100, 254):
            assert gf8.log_alpha(gf8.alpha_pow(exponent)) == exponent

    def test_log_zero(self, gf8):
        with pytest.raises(ValueError):
            gf8.log_alpha(0)

    @settings(max_examples=200)
    @given(st.integers(1, 255), st.integers(1, 255), st.integers(1, 255))
    def test_mul_associative(self, a, b, c):
        field = GaloisField.get(8)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @settings(max_examples=200)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_distributive(self, a, b, c):
        field = GaloisField.get(8)
        left = field.mul(a, b ^ c)
        right = field.mul(a, b) ^ field.mul(a, c)
        assert left == right


class TestVectorOps:
    def test_mul_vec_matches_scalar(self, gf8, rng):
        a = rng.integers(0, 256, 50)
        b = rng.integers(0, 256, 50)
        expected = [gf8.mul(int(x), int(y)) for x, y in zip(a, b)]
        np.testing.assert_array_equal(gf8.mul_vec(a, b), expected)

    def test_mul_vec_broadcast(self, gf8):
        result = gf8.mul_vec(np.array([1, 2, 3]), np.array([7]))
        expected = [gf8.mul(v, 7) for v in (1, 2, 3)]
        np.testing.assert_array_equal(result, expected)

    def test_scale_vec_zero_scalar(self, gf8):
        np.testing.assert_array_equal(
            gf8.scale_vec(np.array([1, 2, 3]), 0), [0, 0, 0]
        )

    def test_scale_vec_matches_scalar(self, gf8, rng):
        a = rng.integers(0, 256, 30)
        np.testing.assert_array_equal(
            gf8.scale_vec(a, 93), [gf8.mul(int(x), 93) for x in a]
        )


class TestPolynomialOps:
    def test_poly_eval_constant(self, gf8):
        assert gf8.poly_eval(np.array([42]), 17) == 42

    def test_poly_eval_linear(self, gf8):
        # p(x) = 3x + 5 at x=2: 3*2 ^ 5
        assert gf8.poly_eval(np.array([3, 5]), 2) == gf8.mul(3, 2) ^ 5

    def test_poly_eval_many_matches_scalar(self, gf8, rng):
        poly = rng.integers(0, 256, 6)
        xs = rng.integers(0, 256, 10)
        expected = [gf8.poly_eval(poly, int(x)) for x in xs]
        np.testing.assert_array_equal(gf8.poly_eval_many(poly, xs), expected)

    def test_poly_mul_degree(self, gf4):
        p = np.array([1, 2])
        q = np.array([1, 0, 3])
        assert len(gf4.poly_mul(p, q)) == 4

    def test_poly_mul_by_one(self, gf8, rng):
        poly = rng.integers(0, 256, 5)
        np.testing.assert_array_equal(gf8.poly_mul(np.array([1]), poly), poly)

    def test_poly_add_xor_aligned(self, gf8):
        result = gf8.poly_add(np.array([1, 2, 3]), np.array([5, 6]))
        np.testing.assert_array_equal(result, [1, 2 ^ 5, 3 ^ 6])

    def test_poly_divmod_identity(self, gf8, rng):
        dividend = rng.integers(0, 256, 8)
        divisor = np.concatenate([[1], rng.integers(0, 256, 3)])
        quotient, remainder = gf8.poly_divmod(dividend, divisor)
        recombined = gf8.poly_add(gf8.poly_mul(quotient, divisor), remainder)
        np.testing.assert_array_equal(
            np.trim_zeros(recombined, "f"), np.trim_zeros(dividend, "f")
        )

    def test_poly_divmod_by_zero(self, gf8):
        with pytest.raises(ZeroDivisionError):
            gf8.poly_divmod(np.array([1, 2]), np.array([0]))

    def test_poly_divmod_short_dividend(self, gf8):
        quotient, remainder = gf8.poly_divmod(np.array([7]), np.array([1, 0, 0]))
        np.testing.assert_array_equal(quotient, [0])
        np.testing.assert_array_equal(remainder, [7])
