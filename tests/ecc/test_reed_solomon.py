"""Unit and property tests for the Reed-Solomon codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import DecodeFailure, ReedSolomon


@pytest.fixture(scope="module")
def rs():
    return ReedSolomon(8, nsym=16, n=80)


def _corrupt(word, positions, rng):
    word = word.copy()
    for pos in positions:
        word[pos] ^= int(rng.integers(1, 256))
    return word


class TestConstruction:
    def test_natural_length_default(self):
        assert ReedSolomon(8, nsym=32).n == 255

    def test_shortened(self, rs):
        assert rs.n == 80 and rs.k == 64

    def test_rejects_oversized_n(self):
        with pytest.raises(ValueError):
            ReedSolomon(4, nsym=2, n=16)

    def test_rejects_bad_nsym(self):
        with pytest.raises(ValueError):
            ReedSolomon(8, nsym=0)
        with pytest.raises(ValueError):
            ReedSolomon(8, nsym=80, n=80)

    def test_repr(self, rs):
        assert "n=80" in repr(rs)


class TestEncode:
    def test_systematic_prefix(self, rs, rng):
        message = rng.integers(0, 256, rs.k)
        codeword = rs.encode(message)
        np.testing.assert_array_equal(codeword[: rs.k], message)

    def test_codeword_validates(self, rs, rng):
        codeword = rs.encode(rng.integers(0, 256, rs.k))
        assert rs.check(codeword)

    def test_zero_message_gives_zero_codeword(self, rs):
        codeword = rs.encode(np.zeros(rs.k, dtype=np.int64))
        assert not codeword.any()

    def test_wrong_length_rejected(self, rs):
        with pytest.raises(ValueError):
            rs.encode(np.zeros(rs.k + 1, dtype=np.int64))

    def test_out_of_field_symbol_rejected(self, rs):
        message = np.zeros(rs.k, dtype=np.int64)
        message[0] = 256
        with pytest.raises(ValueError):
            rs.encode(message)

    def test_parity_helper(self, rs, rng):
        message = rng.integers(0, 256, rs.k)
        np.testing.assert_array_equal(
            rs.parity(message), rs.encode(message)[rs.k:]
        )

    def test_linearity(self, rs, rng):
        a = rng.integers(0, 256, rs.k)
        b = rng.integers(0, 256, rs.k)
        np.testing.assert_array_equal(
            rs.encode(a) ^ rs.encode(b), rs.encode(a ^ b)
        )


class TestDecodeErrors:
    def test_no_errors(self, rs, rng):
        message = rng.integers(0, 256, rs.k)
        decoded, n = rs.decode(rs.encode(message))
        np.testing.assert_array_equal(decoded, message)
        assert n == 0

    @pytest.mark.parametrize("n_errors", [1, 4, 8])
    def test_corrects_up_to_capability(self, rs, rng, n_errors):
        message = rng.integers(0, 256, rs.k)
        codeword = rs.encode(message)
        positions = rng.choice(rs.n, n_errors, replace=False)
        decoded, n = rs.decode(_corrupt(codeword, positions, rng))
        np.testing.assert_array_equal(decoded, message)
        assert n == n_errors

    def test_fails_beyond_capability(self, rs, rng):
        message = rng.integers(0, 256, rs.k)
        codeword = rs.encode(message)
        positions = rng.choice(rs.n, 20, replace=False)
        corrupted = _corrupt(codeword, positions, rng)
        try:
            decoded, _ = rs.decode(corrupted)
            # A miscorrection is theoretically possible but must not
            # silently return the true message while claiming success.
            assert not np.array_equal(decoded, message) or rs.check(
                np.concatenate([decoded, rs.parity(decoded)])
            )
        except DecodeFailure:
            pass  # the expected outcome

    def test_wrong_length_rejected(self, rs):
        with pytest.raises(ValueError):
            rs.decode(np.zeros(10, dtype=np.int64))


class TestDecodeErasures:
    def test_full_erasure_budget(self, rs, rng):
        message = rng.integers(0, 256, rs.k)
        codeword = rs.encode(message)
        erasures = rng.choice(rs.n, rs.nsym, replace=False)
        word = codeword.copy()
        word[erasures] = 0
        decoded, _ = rs.decode(word, erasures=erasures)
        np.testing.assert_array_equal(decoded, message)

    def test_erasure_values_are_ignored(self, rs, rng):
        message = rng.integers(0, 256, rs.k)
        codeword = rs.encode(message)
        erasures = [0, 5, 17]
        word = codeword.copy()
        word[erasures] = 255  # garbage, not zero
        decoded, _ = rs.decode(word, erasures=erasures)
        np.testing.assert_array_equal(decoded, message)

    def test_too_many_erasures(self, rs):
        with pytest.raises(DecodeFailure):
            rs.decode(np.zeros(rs.n, dtype=np.int64),
                      erasures=list(range(rs.nsym + 1)))

    def test_erasure_index_out_of_range(self, rs):
        with pytest.raises(ValueError):
            rs.decode(np.zeros(rs.n, dtype=np.int64), erasures=[rs.n])

    def test_duplicate_erasures_collapse(self, rs, rng):
        message = rng.integers(0, 256, rs.k)
        codeword = rs.encode(message)
        word = codeword.copy()
        word[3] = 0
        decoded, _ = rs.decode(word, erasures=[3, 3, 3])
        np.testing.assert_array_equal(decoded, message)


class TestDecodeMixed:
    @pytest.mark.parametrize("n_errors,n_erasures", [(1, 14), (4, 8), (7, 2)])
    def test_mixed_within_budget(self, rs, rng, n_errors, n_erasures):
        message = rng.integers(0, 256, rs.k)
        codeword = rs.encode(message)
        all_positions = rng.permutation(rs.n)
        erasures = all_positions[:n_erasures]
        errors = all_positions[n_erasures: n_erasures + n_errors]
        word = codeword.copy()
        word[erasures] = 0
        word = _corrupt(word, errors, rng)
        decoded, _ = rs.decode(word, erasures=erasures)
        np.testing.assert_array_equal(decoded, message)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**9), st.integers(0, 8), st.integers(0, 8))
    def test_random_mixes(self, seed, n_errors, n_erasures):
        if 2 * n_errors + n_erasures > 16:
            return
        local = np.random.default_rng(seed)
        codec = ReedSolomon(8, nsym=16, n=60)
        message = local.integers(0, 256, codec.k)
        codeword = codec.encode(message)
        positions = local.permutation(codec.n)
        erasures = positions[:n_erasures]
        errors = positions[n_erasures: n_erasures + n_errors]
        word = codeword.copy()
        word[erasures] = 0
        word = _corrupt(word, errors, local)
        decoded, _ = codec.decode(word, erasures=erasures)
        np.testing.assert_array_equal(decoded, message)


class TestOtherFields:
    @pytest.mark.parametrize("m", [4, 12, 16])
    def test_roundtrip_with_errors(self, m, rng):
        n = min((1 << m) - 1, 40)
        codec = ReedSolomon(m, nsym=8, n=n)
        message = rng.integers(0, 1 << m, codec.k)
        codeword = codec.encode(message)
        word = codeword.copy()
        for pos in rng.choice(n, 4, replace=False):
            word[pos] ^= int(rng.integers(1, 1 << m))
        decoded, _ = codec.decode(word)
        np.testing.assert_array_equal(decoded, message)

    def test_paper_scale_gf16_smoke(self, rng):
        # The paper's field (GF(2^16)); a shortened codeword keeps it fast.
        codec = ReedSolomon(16, nsym=12, n=100)
        message = rng.integers(0, 1 << 16, codec.k)
        codeword = codec.encode(message)
        word = codeword.copy()
        word[0] ^= 1
        word[50] ^= 40000
        erasures = [70, 71, 72]
        word[70:73] = 0
        decoded, _ = codec.decode(word, erasures=erasures)
        np.testing.assert_array_equal(decoded, message)


class TestBatchedEntryPoints:
    """parity_many / syndromes_many: one GF matrix product, row-wise
    identical to the scalar paths."""

    @pytest.mark.parametrize("m,nsym,n", [(8, 8, 40), (8, 47, 255),
                                          (4, 5, 15), (16, 12, 100)])
    def test_parity_many_matches_parity(self, m, nsym, n, rng):
        codec = ReedSolomon(m, nsym=nsym, n=n)
        messages = rng.integers(0, 1 << m, size=(9, codec.k))
        batched = codec.parity_many(messages)
        for row, message in zip(batched, messages):
            np.testing.assert_array_equal(row, codec.parity(message))

    def test_parity_many_rows_are_codewords(self, rng):
        codec = ReedSolomon(8, nsym=8, n=40)
        messages = rng.integers(0, 256, size=(5, codec.k))
        parity = codec.parity_many(messages)
        for message, p in zip(messages, parity):
            assert codec.check(np.concatenate([message, p]))

    def test_parity_many_empty_and_validation(self, rng):
        codec = ReedSolomon(8, nsym=8, n=40)
        assert codec.parity_many(np.zeros((0, codec.k))).shape == (0, 8)
        with pytest.raises(ValueError):
            codec.parity_many(np.zeros((2, codec.k + 1)))
        with pytest.raises(ValueError):
            codec.parity_many(np.full((2, codec.k), 256))

    @pytest.mark.parametrize("m,nsym,n", [(8, 8, 40), (16, 12, 100)])
    def test_syndromes_many_matches_scalar(self, m, nsym, n, rng):
        codec = ReedSolomon(m, nsym=nsym, n=n)
        words = rng.integers(0, 1 << m, size=(7, n))
        batched = codec.syndromes_many(words)
        for row, word in zip(batched, words):
            np.testing.assert_array_equal(row, codec._syndromes(word))

    def test_syndromes_many_zero_iff_codeword(self, rng):
        codec = ReedSolomon(8, nsym=8, n=40)
        clean = codec.encode(rng.integers(0, 256, codec.k))
        dirty = clean.copy()
        dirty[3] ^= 17
        syndromes = codec.syndromes_many(np.stack([clean, dirty]))
        assert not syndromes[0].any()
        assert syndromes[1].any()

    def test_syndromes_many_validation(self):
        codec = ReedSolomon(8, nsym=8, n=40)
        with pytest.raises(ValueError):
            codec.syndromes_many(np.zeros((2, 41)))
        with pytest.raises(ValueError):
            codec.syndromes_many(np.full((2, 40), 256))
