"""Reason-code histograms on the batched errata plane."""

import numpy as np

from repro.ecc.batched import (
    CAPABILITY_EXCEEDED,
    OK,
    REASON_LABELS,
    RESIDUAL_SYNDROMES,
    TOO_MANY_ERASURES,
    reason_counts,
)
from repro.ecc.reed_solomon import ReedSolomon


class TestReasonCountsHelper:
    def test_counts_by_label(self):
        reasons = np.array([OK, OK, TOO_MANY_ERASURES, OK,
                            RESIDUAL_SYNDROMES, TOO_MANY_ERASURES])
        assert reason_counts(reasons) == {
            "ok": 3,
            "erasures exceed correction capability": 2,
            "residual syndromes after correction": 1,
        }

    def test_absent_codes_are_omitted(self):
        counts = reason_counts(np.array([OK, OK]))
        assert counts == {"ok": 2}
        assert REASON_LABELS[CAPABILITY_EXCEEDED] not in counts

    def test_empty_input(self):
        assert reason_counts(np.array([], dtype=np.int64)) == {}

    def test_accepts_plain_lists(self):
        assert reason_counts([OK, CAPABILITY_EXCEEDED]) == {
            "ok": 1, "errors + erasures exceed capability": 1,
        }

    def test_total_matches_row_count(self):
        rng = np.random.default_rng(3)
        reasons = rng.integers(0, len(REASON_LABELS), 500)
        counts = reason_counts(reasons)
        assert sum(counts.values()) == reasons.size


class TestBatchDecodeResultReasonCounts:
    def test_decode_many_outcomes_roll_up(self):
        """A mixed batch — clean rows, correctable rows, one over-budget
        row — rolls up into the same labels the metrics layer reports."""
        rs = ReedSolomon(8, nsym=4, n=14)
        clean = np.array(rs.encode(list(range(10))), dtype=np.uint8)
        dirty = clean.copy()
        dirty[0] ^= 0xA5  # correctable: 1 error within nsym // 2
        words = np.stack([clean, dirty, clean])
        # Row 2 is clean but drowned in erasures beyond the budget.
        erasures = [[], [], [0, 1, 2, 3, 4]]
        result = rs.decode_many(words, erasures)
        counts = result.reason_counts()
        assert counts["ok"] == 2
        assert counts["erasures exceed correction capability"] == 1
        assert sum(counts.values()) == result.n_rows
        assert counts == {
            REASON_LABELS[code]: count
            for code, count in zip(
                *np.unique(result.reasons, return_counts=True)
            )
        }
