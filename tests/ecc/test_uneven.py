"""Tests for the unequal-error-correction strawman."""

import numpy as np
import pytest

from repro.ecc import UnevenEccScheme, redundancy_profile_for_skew


class TestRedundancyProfile:
    def test_sums_to_budget(self):
        profile = redundancy_profile_for_skew([1, 5, 9, 5, 1], total_parity=20)
        assert sum(profile) == 20

    def test_proportionality(self):
        profile = redundancy_profile_for_skew([0, 10, 0], total_parity=10)
        assert profile == [0, 10, 0]

    def test_middle_gets_more(self):
        curve = [1, 3, 8, 3, 1]
        profile = redundancy_profile_for_skew(curve, total_parity=16)
        assert profile[2] == max(profile)
        assert profile[0] <= profile[1] <= profile[2]

    def test_min_per_row(self):
        profile = redundancy_profile_for_skew([0, 0, 100], 10, min_per_row=2)
        assert min(profile) >= 2
        assert sum(profile) == 10

    def test_flat_curve_splits_evenly(self):
        profile = redundancy_profile_for_skew([1, 1, 1, 1], total_parity=8)
        assert profile == [2, 2, 2, 2]

    def test_zero_curve_splits_evenly(self):
        profile = redundancy_profile_for_skew([0, 0, 0, 0], total_parity=4)
        assert sum(profile) == 4

    def test_max_per_row_cap(self):
        profile = redundancy_profile_for_skew(
            [100, 1, 1], total_parity=12, max_per_row=6
        )
        assert max(profile) <= 6
        assert sum(profile) == 12

    def test_rejects_negative_curve(self):
        with pytest.raises(ValueError):
            redundancy_profile_for_skew([-1, 1], 4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            redundancy_profile_for_skew([], 4)

    def test_rejects_infeasible_minimum(self):
        with pytest.raises(ValueError):
            redundancy_profile_for_skew([1, 1], total_parity=1, min_per_row=1)


class TestUnevenEccScheme:
    @pytest.fixture
    def scheme(self):
        return UnevenEccScheme(8, n_columns=50, parity_per_row=[2, 8, 14, 8, 2])

    def test_data_capacity(self, scheme):
        assert scheme.data_symbols_per_row == [48, 42, 36, 42, 48]
        assert scheme.total_data_symbols == 216

    def test_roundtrip_noiseless(self, scheme, rng):
        data = rng.integers(0, 256, scheme.total_data_symbols)
        decoded, row_ok = scheme.decode(scheme.encode(data))
        np.testing.assert_array_equal(decoded, data)
        assert all(row_ok)

    def test_row_with_zero_parity_is_unprotected(self, rng):
        scheme = UnevenEccScheme(8, n_columns=20, parity_per_row=[0, 4])
        data = rng.integers(0, 256, scheme.total_data_symbols)
        matrix = scheme.encode(data)
        matrix[0, 3] ^= 99  # row 0 has no parity: corruption passes through
        decoded, row_ok = scheme.decode(matrix)
        assert row_ok == [True, True]
        assert not np.array_equal(decoded, data)

    def test_heavily_protected_row_corrects(self, scheme, rng):
        data = rng.integers(0, 256, scheme.total_data_symbols)
        matrix = scheme.encode(data)
        for col in (0, 10, 20, 30, 40, 44, 45):  # 7 errors, t = 14/2 = 7
            matrix[2, col] ^= int(rng.integers(1, 256))
        decoded, row_ok = scheme.decode(matrix)
        assert all(row_ok)
        np.testing.assert_array_equal(decoded, data)

    def test_lightly_protected_row_fails_under_same_load(self, scheme, rng):
        data = rng.integers(0, 256, scheme.total_data_symbols)
        matrix = scheme.encode(data)
        for col in (0, 10, 20, 30, 40):  # 5 errors > t = 1 for nsym=2
            matrix[0, col] ^= int(rng.integers(1, 256))
        decoded, row_ok = scheme.decode(matrix)
        assert not row_ok[0]
        # The mismatch with the assumed skew is the paper's whole point:
        # the same error load that row 2 shrugs off destroys row 0.

    def test_erasures_forwarded_to_rows(self, scheme, rng):
        data = rng.integers(0, 256, scheme.total_data_symbols)
        matrix = scheme.encode(data)
        matrix[:, 7] = 0
        decoded, row_ok = scheme.decode(matrix, erasures=[7])
        # Rows with nsym >= 1 can absorb one erasure; nsym=2 rows included.
        assert all(row_ok)
        np.testing.assert_array_equal(decoded, data)

    def test_rejects_bad_parity_count(self):
        with pytest.raises(ValueError):
            UnevenEccScheme(8, n_columns=10, parity_per_row=[10])

    def test_encode_rejects_wrong_size(self, scheme):
        with pytest.raises(ValueError):
            scheme.encode(np.zeros(5, dtype=np.int64))

    def test_decode_rejects_wrong_shape(self, scheme):
        with pytest.raises(ValueError):
            scheme.decode(np.zeros((2, 50), dtype=np.int64))
