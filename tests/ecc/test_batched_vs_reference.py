"""Differential suite: batched errata decoder vs the frozen scalar chain.

``ReedSolomon.decode_many`` must be byte-identical to
``ReferenceReedSolomon.decode`` row for row — corrected symbols, corrected
counts, and which rows fail — across error/erasure mixes at, below, and
beyond capability, duplicate and boundary erasure indices, shortened
codes, and all-erasure rows. The pipeline's two-wave soft-erasure routing
(``correct_matrix_many``) is pinned the same way against the frozen
per-codeword loop (``correct_matrix_loop_reference``).
"""

import numpy as np
import pytest

from repro.core.layout import MatrixConfig
from repro.core.pipeline import (
    DnaStoragePipeline,
    PipelineConfig,
    ReceivedUnit,
)
from repro.ecc import DecodeFailure, ReedSolomon, ReferenceReedSolomon

#: (m, nsym, n) codec shapes: small shortened, odd-field, mid shortened,
#: natural-length GF(256), and a wide-field code.
CODECS = [
    (8, 16, 80),
    (8, 8, 40),
    (4, 5, 15),
    (8, 47, 255),
    (12, 10, 60),
]


def _reference_rows(ref, words, erasure_lists):
    """Run the frozen scalar decoder row by row; mirror the batch result."""
    messages = []
    counts = []
    ok = []
    for word, erasures in zip(words, erasure_lists):
        try:
            message, n_fixed = ref.decode(word, erasures)
            messages.append(message)
            counts.append(n_fixed)
            ok.append(True)
        except DecodeFailure:
            messages.append(None)
            counts.append(0)
            ok.append(False)
    return messages, counts, ok


def _assert_matches_reference(rs, ref, words, erasure_lists):
    result = rs.decode_many(words, erasure_lists)
    messages, counts, ok = _reference_rows(ref, words, erasure_lists)
    np.testing.assert_array_equal(result.ok, ok)
    for row in range(len(words)):
        if ok[row]:
            np.testing.assert_array_equal(
                result.messages[row], messages[row],
                err_msg=f"row {row}: corrected symbols diverge",
            )
            assert int(result.n_corrected[row]) == counts[row], (
                f"row {row}: corrected count diverges"
            )
        else:
            assert not result.ok[row]
            assert int(result.reasons[row]) != 0


def _noisy_batch(rs, rng, n_rows, max_errors, max_erasures):
    """Random codewords with error/erasure mixes straddling capability."""
    words = np.empty((n_rows, rs.n), dtype=np.int64)
    erasure_lists = []
    for row in range(n_rows):
        message = rng.integers(0, rs.field.order, size=rs.k)
        word = rs.encode(message)
        positions = rng.permutation(rs.n)
        n_errors = int(rng.integers(0, max_errors + 1))
        n_erasures = int(rng.integers(0, max_erasures + 1))
        for pos in positions[:n_errors]:
            word[pos] ^= int(rng.integers(1, rs.field.order))
        erasure_lists.append(
            [int(p) for p in positions[n_errors:n_errors + n_erasures]]
        )
        words[row] = word
    return words, erasure_lists


class TestBatchedVsReference:
    @pytest.mark.parametrize("m,nsym,n", CODECS)
    def test_fuzz_mixes_straddling_capability(self, m, nsym, n):
        rs = ReedSolomon(m, nsym=nsym, n=n)
        ref = ReferenceReedSolomon(m, nsym=nsym, n=n)
        rng = np.random.default_rng(m * 1000 + nsym)
        # Mixes go well beyond capability: up to nsym errors and nsym
        # erasures in one row, so every failure branch gets exercised.
        words, erasure_lists = _noisy_batch(
            rs, rng, n_rows=120, max_errors=nsym, max_erasures=nsym
        )
        _assert_matches_reference(rs, ref, words, erasure_lists)

    def test_duplicate_and_boundary_erasure_indices(self):
        rs = ReedSolomon(8, nsym=8, n=40)
        ref = ReferenceReedSolomon(8, nsym=8, n=40)
        rng = np.random.default_rng(17)
        words, _ = _noisy_batch(rs, rng, n_rows=6, max_errors=2,
                                max_erasures=0)
        erasure_lists = [
            [0, 0, 0],                # duplicates collapse to one
            [39, 39, 0],              # both boundaries, duplicated
            [0, 1, 2, 2, 1, 0],       # interleaved duplicates
            [39] * 8,                 # duplicates must not blow the budget
            [],                       # no erasures at all
            [5, 4, 3, 2, 1, 0, 0],    # unsorted with a duplicate
        ]
        _assert_matches_reference(rs, ref, words, erasure_lists)

    def test_all_erasure_rows_fail_in_both(self):
        rs = ReedSolomon(8, nsym=8, n=40)
        ref = ReferenceReedSolomon(8, nsym=8, n=40)
        rng = np.random.default_rng(23)
        words, _ = _noisy_batch(rs, rng, n_rows=3, max_errors=0,
                                max_erasures=0)
        erasure_lists = [
            list(range(40)),          # every position erased
            list(range(9)),           # one past the budget
            list(range(8)),           # exactly the budget (decodes)
        ]
        _assert_matches_reference(rs, ref, words, erasure_lists)
        result = rs.decode_many(words, erasure_lists)
        assert list(result.ok) == [False, False, True]

    def test_erasure_only_rows_at_full_budget(self):
        """nsym erasures and no errors: decodes with count == nsym."""
        rs = ReedSolomon(8, nsym=12, n=60)
        ref = ReferenceReedSolomon(8, nsym=12, n=60)
        rng = np.random.default_rng(29)
        words = np.empty((8, rs.n), dtype=np.int64)
        erasure_lists = []
        for row in range(8):
            word = rs.encode(rng.integers(0, 256, size=rs.k))
            positions = rng.permutation(rs.n)[:rs.nsym]
            word[positions] = rng.integers(0, 256, size=rs.nsym)
            words[row] = word
            erasure_lists.append([int(p) for p in positions])
        _assert_matches_reference(rs, ref, words, erasure_lists)

    def test_mask_and_list_forms_agree(self):
        rs = ReedSolomon(8, nsym=8, n=40)
        rng = np.random.default_rng(31)
        words, erasure_lists = _noisy_batch(rs, rng, n_rows=40,
                                            max_errors=4, max_erasures=8)
        mask = np.zeros((40, rs.n), dtype=bool)
        for row, erasures in enumerate(erasure_lists):
            mask[row, erasures] = True
        by_list = rs.decode_many(words, erasure_lists)
        by_mask = rs.decode_many(words, mask)
        np.testing.assert_array_equal(by_list.messages, by_mask.messages)
        np.testing.assert_array_equal(by_list.n_corrected,
                                      by_mask.n_corrected)
        np.testing.assert_array_equal(by_list.ok, by_mask.ok)
        np.testing.assert_array_equal(by_list.reasons, by_mask.reasons)

    def test_empty_batch(self):
        rs = ReedSolomon(8, nsym=8, n=40)
        result = rs.decode_many(np.zeros((0, 40), dtype=np.int64))
        assert result.n_rows == 0
        assert result.messages.shape == (0, rs.k)
        assert result.failed_rows().size == 0

    def test_scalar_decode_matches_reference_failure_for_failure(self):
        """The public scalar wrapper raises exactly when the frozen
        scalar chain raises (same erasure-validation errors too)."""
        rs = ReedSolomon(8, nsym=6, n=30)
        ref = ReferenceReedSolomon(8, nsym=6, n=30)
        rng = np.random.default_rng(37)
        word = rs.encode(rng.integers(0, 256, size=rs.k))
        for bad in ([-1], [30], [0] * 3 + [99]):
            with pytest.raises(ValueError):
                ref.decode(word, bad)
            with pytest.raises(ValueError):
                rs.decode(word, bad)
        with pytest.raises(DecodeFailure):
            ref.decode(word, list(range(7)))
        with pytest.raises(DecodeFailure):
            rs.decode(word, list(range(7)))

    def test_reasons_carry_labels(self):
        from repro.ecc.batched import REASON_LABELS

        rs = ReedSolomon(8, nsym=4, n=20)
        rng = np.random.default_rng(41)
        word = rs.encode(rng.integers(0, 256, size=rs.k))
        word[:5] ^= rng.integers(1, 256, size=5)  # beyond capability
        result = rs.decode_many(word[None, :])
        assert not result.ok[0]
        assert int(result.reasons[0]) in REASON_LABELS


class TestSoftErasureWaves:
    """The two-wave correct_matrix_many routing vs the frozen loop."""

    CONFIG = PipelineConfig(
        matrix=MatrixConfig(m=8, n_columns=60, nsym=12, payload_rows=8)
    )

    def _noisy_unit(self, pipeline, rng, n_error_cols, n_lost,
                    soft_cells, misleading_soft):
        bits = rng.integers(0, 2, size=pipeline.capacity_bits,
                            dtype=np.uint8)
        matrix = pipeline.encode(bits).matrix.copy()
        columns = rng.permutation(60)
        for column in columns[:n_error_cols]:
            matrix[int(rng.integers(0, 8)), column] ^= int(
                rng.integers(1, 256)
            )
        erased = [int(c) for c in columns[n_error_cols:
                                          n_error_cols + n_lost]]
        matrix[:, erased] = 0
        cells = [
            (int(rng.integers(0, 8)), int(rng.integers(0, 60)))
            for _ in range(soft_cells)
        ]
        if misleading_soft:
            # Flag whole healthy columns: enough wrong hints to push
            # wave 1 past capability so wave 2 must rescue the rows.
            cells += [
                (row, int(column))
                for row in range(8)
                for column in columns[40:46]
            ]
        return ReceivedUnit(
            matrix=matrix,
            erased_columns=erased,
            duplicate_columns=[],
            invalid_strands=0,
            cell_erasures=cells,
        )

    def test_batched_waves_match_loop_reference(self):
        pipeline = DnaStoragePipeline(self.CONFIG)
        rng = np.random.default_rng(97)
        units = [
            self._noisy_unit(
                pipeline, rng,
                n_error_cols=int(rng.integers(0, 10)),
                n_lost=int(rng.integers(0, 8)),
                soft_cells=int(rng.integers(0, 10)),
                misleading_soft=bool(rng.integers(0, 2)),
            )
            for _ in range(30)
        ]
        batched = pipeline.correct_matrix_many(units)
        for unit, (matrix, report) in zip(units, batched):
            want_matrix, want_report = \
                pipeline.correct_matrix_loop_reference(unit)
            np.testing.assert_array_equal(matrix, want_matrix)
            assert report.failed_codewords == want_report.failed_codewords
            assert report.corrected_symbols == want_report.corrected_symbols
            assert report.erased_columns == want_report.erased_columns

    def test_misleading_soft_flags_force_second_wave(self):
        """Wrong confidence hints must never lose a codeword plain
        decoding would have saved: wave 1 (augmented) fails, wave 2
        (hard-only) rescues, and the outcome equals the loop reference."""
        pipeline = DnaStoragePipeline(self.CONFIG)
        rng = np.random.default_rng(101)
        bits = rng.integers(0, 2, size=pipeline.capacity_bits,
                            dtype=np.uint8)
        matrix = pipeline.encode(bits).matrix.copy()
        # Two real errors per codeword (2*2 <= nsym=12: decodable), plus
        # misleading soft flags on 11 healthy columns — the augmented
        # budget fills with wrong hints, 2*2 + 11 > 12 fails wave 1.
        for row in range(8):
            matrix[row, 0] ^= 1 + row
            matrix[row, 1] ^= 17 + row
        cells = [(row, column) for row in range(8)
                 for column in range(10, 21)]
        unit = ReceivedUnit(
            matrix=matrix, erased_columns=[], duplicate_columns=[],
            invalid_strands=0, cell_erasures=cells,
        )
        calls = []
        original = ReedSolomon.decode_many

        def counting(self, words, erasure_table=None):
            calls.append(words.shape[0])
            return original(self, words, erasure_table)

        ReedSolomon.decode_many = counting
        try:
            (got_matrix, got_report), = pipeline.correct_matrix_many([unit])
        finally:
            ReedSolomon.decode_many = original
        assert len(calls) == 2, "misleading flags must trigger wave 2"
        want_matrix, want_report = \
            pipeline.correct_matrix_loop_reference(unit)
        np.testing.assert_array_equal(got_matrix, want_matrix)
        assert got_report.failed_codewords == want_report.failed_codewords
        assert got_report.failed_codewords == []
        assert got_report.corrected_symbols == want_report.corrected_symbols
