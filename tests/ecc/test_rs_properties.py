"""Property-style tests of Reed-Solomon code structure."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import DecodeFailure, ReedSolomon


class TestMinimumDistance:
    def test_mds_distance_small_code(self):
        """RS is MDS: distinct codewords differ in >= nsym + 1 positions.

        Verified exhaustively for a tiny code: GF(16), n=6, k=2 — all 256
        messages, pairwise.
        """
        code = ReedSolomon(4, nsym=4, n=6)
        codewords = [
            code.encode(np.array(message, dtype=np.int64))
            for message in itertools.product(range(16), repeat=2)
        ]
        minimum = min(
            int((a != b).sum())
            for i, a in enumerate(codewords)
            for b in codewords[i + 1:]
        )
        assert minimum == code.nsym + 1

    def test_burst_error_correction(self, rng):
        """Bursts are no harder than scattered errors for RS symbols."""
        code = ReedSolomon(8, nsym=12, n=60)
        message = rng.integers(0, 256, code.k)
        codeword = code.encode(message)
        word = codeword.copy()
        start = 20
        for offset in range(6):  # a 6-symbol burst, t = 6
            word[start + offset] ^= int(rng.integers(1, 256))
        decoded, _ = code.decode(word)
        np.testing.assert_array_equal(decoded, message)

    def test_boundary_position_errors(self, rng):
        code = ReedSolomon(8, nsym=8, n=40)
        message = rng.integers(0, 256, code.k)
        codeword = code.encode(message)
        word = codeword.copy()
        word[0] ^= 0xFF
        word[code.n - 1] ^= 0x01
        decoded, n = code.decode(word)
        np.testing.assert_array_equal(decoded, message)
        assert n == 2

    def test_boundary_position_erasures(self, rng):
        code = ReedSolomon(8, nsym=8, n=40)
        message = rng.integers(0, 256, code.k)
        codeword = code.encode(message)
        word = codeword.copy()
        word[[0, code.n - 1]] = 0
        decoded, _ = code.decode(word, erasures=[0, code.n - 1])
        np.testing.assert_array_equal(decoded, message)


class TestCodewordAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**9))
    def test_sum_of_codewords_is_a_codeword(self, seed):
        rng = np.random.default_rng(seed)
        code = ReedSolomon(8, nsym=6, n=30)
        a = code.encode(rng.integers(0, 256, code.k))
        b = code.encode(rng.integers(0, 256, code.k))
        assert code.check(a ^ b)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**9))
    def test_single_error_always_detected(self, seed):
        rng = np.random.default_rng(seed)
        code = ReedSolomon(8, nsym=4, n=25)
        codeword = code.encode(rng.integers(0, 256, code.k))
        position = int(rng.integers(0, code.n))
        word = codeword.copy()
        word[position] ^= int(rng.integers(1, 256))
        assert not code.check(word)
        decoded, n = code.decode(word)
        np.testing.assert_array_equal(decoded, codeword[: code.k])
        assert n == 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**9), st.integers(1, 6))
    def test_erasures_cheaper_than_errors(self, seed, budget):
        """nsym erasures are correctable where nsym errors are not."""
        rng = np.random.default_rng(seed)
        code = ReedSolomon(8, nsym=6, n=30)
        message = rng.integers(0, 256, code.k)
        codeword = code.encode(message)
        positions = rng.choice(code.n, 6, replace=False)
        # As erasures: always recoverable.
        word = codeword.copy()
        word[positions] = 0
        decoded, _ = code.decode(word, erasures=positions)
        np.testing.assert_array_equal(decoded, message)


class TestShortenedCodeEquivalence:
    def test_shortened_equals_zero_padded(self, rng):
        """A shortened codeword equals the tail of the full-length codeword
        of the zero-padded message (the standard shortening construction)."""
        full = ReedSolomon(4, nsym=4)          # n = 15
        short = ReedSolomon(4, nsym=4, n=9)    # k = 5
        message = rng.integers(0, 16, short.k)
        padded = np.concatenate([np.zeros(full.k - short.k, dtype=np.int64),
                                 message])
        np.testing.assert_array_equal(
            full.encode(padded)[full.k - short.k:], short.encode(message)
        )
