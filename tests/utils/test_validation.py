"""Tests for argument validators."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        check_probability(value, "p")

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError, match="p must be"):
            check_probability(value, "p")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(0.1, "x")

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.5, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range(1, "x", 1, 3)
        check_in_range(3, "x", 1, 3)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="x must be in"):
            check_in_range(4, "x", 1, 3)
