"""Unit and property tests for bit-level I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitio import (
    BitReader,
    BitWriter,
    bits_to_bytes,
    bytes_to_bits,
    pack_uint,
    unpack_uint,
)


class TestBitWriter:
    def test_empty_writer_has_zero_length(self):
        assert len(BitWriter()) == 0
        assert BitWriter().to_bytes() == b""

    def test_single_bit_sets_msb(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.to_bytes() == b"\x80"
        assert len(writer) == 1

    def test_eight_bits_fill_one_byte(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 0, 1, 0, 1, 0):
            writer.write_bit(bit)
        assert writer.to_bytes() == b"\xaa"
        assert len(writer) == 8

    def test_write_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert len(writer) == 3
        assert writer.to_bytes() == b"\xa0"

    def test_rejects_invalid_bit(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_rejects_value_too_wide(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(8, 3)

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_to_bit_array_has_no_padding(self):
        writer = BitWriter()
        writer.write_bits(0b11011, 5)
        np.testing.assert_array_equal(writer.to_bit_array(), [1, 1, 0, 1, 1])

    def test_write_bit_array(self):
        writer = BitWriter()
        writer.write_bit_array(np.array([1, 0, 1], dtype=np.uint8))
        assert len(writer) == 3
        np.testing.assert_array_equal(writer.to_bit_array(), [1, 0, 1])


class TestBitReader:
    def test_reads_bits_msb_first(self):
        reader = BitReader(b"\xa0")
        assert [reader.read_bit() for _ in range(3)] == [1, 0, 1]

    def test_read_bits_field(self):
        reader = BitReader(b"\xde\xad")
        assert reader.read_bits(16) == 0xDEAD

    def test_eof_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_read_past_end_raises_without_consuming(self):
        reader = BitReader(b"\xff")
        with pytest.raises(EOFError):
            reader.read_bits(9)

    def test_position_and_remaining(self):
        reader = BitReader(b"\x00\x00")
        reader.read_bits(5)
        assert reader.position == 5
        assert reader.remaining == 11

    def test_seek(self):
        reader = BitReader(b"\xf0")
        reader.seek(4)
        assert reader.read_bit() == 0
        reader.seek(0)
        assert reader.read_bit() == 1

    def test_seek_out_of_range(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").seek(9)

    def test_from_bits(self):
        reader = BitReader.from_bits(np.array([1, 1, 0], dtype=np.uint8))
        assert reader.read_bits(3) == 0b110
        assert reader.remaining == 0


class TestConversions:
    def test_bytes_to_bits_empty(self):
        assert bytes_to_bits(b"").size == 0

    def test_bits_to_bytes_empty(self):
        assert bits_to_bytes(np.zeros(0, dtype=np.uint8)) == b""

    def test_bits_to_bytes_pads_with_zeros(self):
        assert bits_to_bytes(np.array([1], dtype=np.uint8)) == b"\x80"

    def test_known_value(self):
        np.testing.assert_array_equal(
            bytes_to_bits(b"\x01"), [0, 0, 0, 0, 0, 0, 0, 1]
        )

    @given(st.binary(max_size=200))
    def test_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.integers(0, 2**32 - 1), st.integers(32, 40))
    def test_pack_unpack_uint_roundtrip(self, value, width):
        assert unpack_uint(pack_uint(value, width)) == value

    def test_pack_uint_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_uint(4, 2)


class TestWriterReaderTogether:
    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(0, 2**16 - 1), st.integers(16, 20)),
                    max_size=30))
    def test_field_stream_roundtrip(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value, width)
        reader = BitReader.from_bits(writer.to_bit_array())
        for value, width in fields:
            assert reader.read_bits(width) == value
        assert reader.remaining == 0
