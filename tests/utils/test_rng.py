"""Tests for RNG normalization."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 2**30)
        b = ensure_rng(2).integers(0, 2**30)
        assert a != b

    def test_generator_passes_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 2**30, 5)
        b = children[1].integers(0, 2**30, 5)
        assert not np.array_equal(a, b)

    def test_deterministic_from_seed(self):
        a = [g.integers(0, 2**30) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 2**30) for g in spawn_rngs(9, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
