#!/usr/bin/env python
"""A terminal rendition of the paper's Figure 15.

Stores one image with DnaMapper, retrieves it at decreasing coverage, and
renders the decoded results side by side as ASCII art: the left panel is
(near-)lossless, the others show growing — but graceful — quality loss.
Run with::

    python examples/degradation_gallery.py
"""

import numpy as np

from repro.analysis import ImageStoreExperiment
from repro.core import MatrixConfig
from repro.media import synth_image
from repro.media.ascii_art import side_by_side
from repro.media.psnr import quality_loss_db
from repro.crypto import ChaCha20


def main() -> None:
    matrix = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=20)
    image = synth_image(96, 96, n_shapes=8, rng=4)
    experiment = ImageStoreExperiment(
        [image], matrix, layout="dnamapper", quality=65, rng=1,
    )
    pool = experiment.build_pool(error_rate=0.11, max_coverage=12, rng=6)

    panels = {}
    stored = experiment.images[0]
    clean = experiment.codec.decode_robust(stored.compressed)[0]
    for coverage in (12, 6, 4):
        received = experiment.pipeline.receive(pool.clusters_at(coverage))
        corrected, _ = experiment.pipeline.correct_matrix(received)
        prioritized = experiment.pipeline.prioritized_bits(corrected)
        try:
            data = experiment.extract_archive(prioritized)
            from repro.files import unpack_archive_robust
            payload = unpack_archive_robust(data)[0].data
            compressed = ChaCha20(stored.key, stored.nonce).process(payload)
            decoded, _ = experiment.codec.decode_robust(compressed)
        except Exception:
            decoded = np.full_like(image, 128)
        if decoded.shape != image.shape:
            decoded = np.full_like(image, 128)
        loss = quality_loss_db(image, clean, decoded)
        panels[f"cov={coverage} ({loss:.1f} dB loss)"] = decoded

    print("DnaMapper graceful degradation (error rate 11%):\n")
    print(side_by_side(panels, width=32))


if __name__ == "__main__":
    main()
