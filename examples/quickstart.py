#!/usr/bin/env python
"""Quickstart: store bits in simulated DNA and get them back.

Encodes a random payload into one encoding unit under each of the three
layouts (baseline, Gini, DnaMapper), pushes the synthesized strands
through a noisy sequencing channel, and decodes. Both hot stages are
batched and columnar:

* ``simulator.sequence_batch`` emits every read of every cluster in one
  vectorized IDS pass (a single RNG draw over all ~80k bases) into a
  ``ReadBatch`` — a flat base buffer plus per-read offsets;
* ``pipeline.decode`` feeds that batch straight into the consensus
  engine's batched scan, so all 120 clusters advance simultaneously and
  no DNA string is ever materialized between channel and decoder.

The finale shows the multi-unit store, where batching moves up to the
store plane: three units encode through one vectorized pass and decode
from one spanning batch with a single consensus call — through the
store's unified ``read(ReadRequest)`` entry point, ending with a traced
``read_many`` that coalesces a labeled and an unlabeled request into
that same single pass.

Run with::

    python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    DnaStoragePipeline,
    DnaStore,
    ErrorModel,
    GammaCoverage,
    IterativeReconstructor,
    MatrixConfig,
    PipelineConfig,
    PosteriorReconstructor,
    ReadRequest,
    SequencingSimulator,
    TwoWayReconstructor,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # A small encoding unit: 120 molecules of 68 bases (4 index + 64
    # payload), 22 of them redundant -- an 18% overhead like the paper's.
    matrix = MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16)
    payload = rng.integers(0, 2, matrix.data_bits, dtype=np.uint8)
    print(f"unit capacity : {matrix.data_bits // 8} bytes "
          f"({matrix.n_columns} molecules x {matrix.strand_length} bases)")

    # A mid-quality channel: 6% errors (uniform ins/del/sub mix), coverage
    # Gamma-distributed around 10 reads per molecule.
    simulator = SequencingSimulator(
        ErrorModel.uniform(0.06), GammaCoverage(10, shape=6)
    )

    for layout in ("baseline", "gini", "dnamapper"):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=matrix, layout=layout)
        )
        unit = pipeline.encode(payload)
        start = time.perf_counter()
        batch = simulator.sequence_batch(unit.strands, rng)
        channel_ms = 1000 * (time.perf_counter() - start)
        start = time.perf_counter()
        decoded, report = pipeline.decode(batch, payload.size)
        decode_ms = 1000 * (time.perf_counter() - start)
        ok = bool(np.array_equal(decoded, payload))
        print(f"{layout:10s}: exact={ok} clean={report.clean} "
              f"erasures={len(report.erased_columns)} "
              f"symbols_corrected={report.corrected_symbols} "
              f"channel={channel_ms:.1f}ms decode={decode_ms:.0f}ms "
              f"({batch.n_reads} reads, {batch.total_bases} bases)")

    # The batched consensus API can also be driven directly: one call
    # reconstructs every cluster of the unit through a single vectorized
    # scan (identical output to reconstructing clusters one at a time).
    # ``drop_lost`` compacts away clusters that received zero reads.
    live = batch.drop_lost()
    estimates = TwoWayReconstructor().reconstruct_batch(
        live, matrix.strand_length
    )
    print(f"batched consensus: {estimates.shape[0]} strands of "
          f"{estimates.shape[1]} bases reconstructed in one call")

    # The refinement layers ride the same columnar entry points: the
    # iterative realign-and-vote sweeps every read of every cluster as
    # one edit-DP stack, and the posterior lattice adds a per-position
    # confidence (the paper's reliability skew, seen as posterior mass) —
    # both bit-compatible with their per-cluster references but ~10x
    # faster on this unit.
    start = time.perf_counter()
    refined = IterativeReconstructor().reconstruct_batch(
        live, matrix.strand_length
    )
    iterative_ms = 1000 * (time.perf_counter() - start)
    start = time.perf_counter()
    with_confidence = PosteriorReconstructor(
        channel=ErrorModel.uniform(0.06)
    ).reconstruct_batch_with_confidence(live, matrix.strand_length)
    posterior_ms = 1000 * (time.perf_counter() - start)
    confidence = np.stack([c for _, c in with_confidence])
    print(f"batched refinement: iterative {iterative_ms:.0f}ms, "
          f"posterior {posterior_ms:.0f}ms for {refined.shape[0]} clusters "
          f"(mean posterior confidence {confidence.mean():.3f})")

    # Strings stay available at the edges, decoded lazily from the batch
    # (clusters come from the compacted batch: Gamma coverage can drop a
    # cluster entirely, so index only the live ones):
    first = live.to_clusters()[0]
    print(f"first read of cluster {first.source_index}: "
          f"{first.reads[0][:24]}... (decoded on demand)")

    # Payloads bigger than one unit go through the multi-unit store, and
    # the *store* is the batching boundary: encode assembles every unit's
    # matrix, parity and strands in single array passes, the channel
    # emits one spanning batch for all units (`sequence_store`), and
    # decode runs ONE consensus batch call over every surviving cluster
    # of every unit (`pipeline.receive_many` parses the whole estimate
    # stack segmented by unit) followed by ONE batched RS errata pass:
    # every dirty codeword of every unit moves through Berlekamp-Massey,
    # Chien and Forney in lockstep (`ReedSolomon.decode_many`). Reads
    # come back through the store's single entry point — `store.read`
    # takes a `ReadRequest` and answers with a `ReadResult` that still
    # unpacks like the old `(bits, report)` tuple. The per-unit loop
    # survives behind `ReadRequest(reference=True)` and the scalar RS
    # chain as `repro.ecc.ReferenceReedSolomon` — the frozen references
    # the batched paths are pinned byte-identical against.
    store = DnaStore(PipelineConfig(matrix=matrix, layout="gini"))
    payload = rng.integers(0, 2, 3 * store.unit_capacity_bits,
                           dtype=np.uint8)
    image = store.encode(payload)
    spanning = simulator.sequence_store(image, rng)
    start = time.perf_counter()
    decoded, report = store.read(ReadRequest(spanning, payload.size))
    store_ms = 1000 * (time.perf_counter() - start)
    print(f"multi-unit store: {image.n_units} units "
          f"({image.total_strands} strands) decoded in one consensus "
          f"pass: exact={bool(np.array_equal(decoded, payload))} "
          f"clean={report.clean} in {store_ms:.0f}ms")

    # Finally, drop the simulation's perfect cluster labels entirely —
    # the workload the paper assumes solved upstream. `labeled=False`
    # keeps one shuffled read pool per unit (units are separately
    # amplifiable pools; strand attribution inside a pool is gone), and
    # `ReadRequest(pool=True)` recovers the clusters on the columnar
    # plane with the batched greedy clusterer (q-gram signatures in one
    # pass, a stacked banded edit-DP per cluster round — assignment-
    # identical to the string-plane GreedyClusterer at ~30x its speed),
    # then decodes all recovered clusters of all units through the same
    # one-pass receive_many as labeled reads.
    pool = simulator.sequence_store(image, rng, labeled=False)
    start = time.perf_counter()
    decoded, report = store.read(
        ReadRequest(pool, payload.size, pool=True)
    )
    pool_ms = 1000 * (time.perf_counter() - start)
    print(f"unlabeled-pool decode: {pool.n_reads} untagged reads in "
          f"{image.n_units} pools -> cluster + decode: "
          f"exact={bool(np.array_equal(decoded, payload))} "
          f"clean={report.clean} in {pool_ms:.0f}ms")

    # Past a few thousand reads per pool the greedy scan's pool x
    # clusters candidate set dominates the decode. `clusterer=` swaps
    # in the LSH-banded engine — minhash-band bin collisions propose
    # the pairs, the same exact banded edit DP verifies every one, so
    # precision stays 1.0 while candidates grow near-linearly with the
    # pool (>5x faster than greedy at 50k reads; see
    # benchmarks/test_fig_lsh_scaling.py). Same swap on decode_pool,
    # StoreService.put, and `repro.cli serve --pool --clusterer lsh`.
    from repro import LSHClusterer

    lsh = LSHClusterer.for_strand_length(matrix.strand_length)
    start = time.perf_counter()
    decoded, report = store.read(
        ReadRequest(pool, payload.size, pool=True, clusterer=lsh)
    )
    lsh_ms = 1000 * (time.perf_counter() - start)
    print(f"unlabeled-pool decode (LSH): "
          f"exact={bool(np.array_equal(decoded, payload))} "
          f"clean={report.clean} in {lsh_ms:.0f}ms")

    # Every run above was silently instrumented: the decode path carries
    # stage spans and pipeline counters that the default NullTracer
    # no-ops away. Activate a real tracer and the same decode leaves a
    # machine-checkable run manifest — per-stage wall times, RS
    # failure-reason histogram, cluster/consensus counters, config
    # fingerprint. `python -m repro.cli report <file>` renders a saved
    # one, and with two files diffs them stage by stage. Here the finale
    # also shows `read_many`, the serving plane's coalescing entry: the
    # labeled spanning batch AND the unlabeled pool answer from ONE
    # consensus pass and ONE RS errata pass, under one traced manifest
    # (`StoreService` builds its queue/cache tick loop on this call —
    # see `python -m repro.cli serve`).
    from repro.observability import Tracer, use_tracer

    tracer = Tracer()
    tracer.context["seed"] = 7
    with use_tracer(tracer):
        pool = simulator.sequence_store(image, rng, labeled=False)
        results = store.read_many([
            ReadRequest(spanning, payload.size, object_id="labeled"),
            ReadRequest(pool, payload.size, pool=True, object_id="pooled"),
        ])
    exact = all(np.array_equal(r.bits, payload) for r in results)
    manifest = tracer.manifests[-1]
    heaviest = max(manifest.stages, key=manifest.stage_seconds)
    reasons = manifest.histogram("rs.failure_reasons")
    print(f"traced read_many: {len(results)} requests coalesced "
          f"(exact={exact}); {len(manifest.stages)} stages, heaviest "
          f"{heaviest} at {manifest.stage_share(heaviest):.0%} of "
          f"{manifest.total_seconds * 1000:.0f}ms; codeword outcomes "
          f"{reasons} (save with manifest.save('run.json'), render with "
          f"`python -m repro.cli report run.json`)")


if __name__ == "__main__":
    main()
