#!/usr/bin/env python
"""Quickstart: store bits in simulated DNA and get them back.

Encodes a random payload into one encoding unit under each of the three
layouts (baseline, Gini, DnaMapper), pushes the synthesized strands
through a noisy sequencing channel, and decodes. ``pipeline.decode``
funnels every cluster through the consensus engine's batched entry point
(``reconstruct_many``) — one vectorized scan advances all 120 clusters at
once, which is why the decode line below takes milliseconds rather than
seconds. Run with::

    python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    DnaStoragePipeline,
    ErrorModel,
    GammaCoverage,
    MatrixConfig,
    PipelineConfig,
    SequencingSimulator,
    TwoWayReconstructor,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # A small encoding unit: 120 molecules of 68 bases (4 index + 64
    # payload), 22 of them redundant -- an 18% overhead like the paper's.
    matrix = MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16)
    payload = rng.integers(0, 2, matrix.data_bits, dtype=np.uint8)
    print(f"unit capacity : {matrix.data_bits // 8} bytes "
          f"({matrix.n_columns} molecules x {matrix.strand_length} bases)")

    # A mid-quality channel: 6% errors (uniform ins/del/sub mix), coverage
    # Gamma-distributed around 10 reads per molecule.
    simulator = SequencingSimulator(
        ErrorModel.uniform(0.06), GammaCoverage(10, shape=6)
    )

    for layout in ("baseline", "gini", "dnamapper"):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=matrix, layout=layout)
        )
        unit = pipeline.encode(payload)
        clusters = simulator.sequence(unit.strands, rng)
        start = time.perf_counter()
        decoded, report = pipeline.decode(clusters, payload.size)
        elapsed_ms = 1000 * (time.perf_counter() - start)
        ok = bool(np.array_equal(decoded, payload))
        print(f"{layout:10s}: exact={ok} clean={report.clean} "
              f"erasures={len(report.erased_columns)} "
              f"symbols_corrected={report.corrected_symbols} "
              f"decode={elapsed_ms:.0f}ms")

    # The batched consensus API can also be driven directly: one call
    # reconstructs every cluster of the unit through a single vectorized
    # scan (identical output to reconstructing clusters one at a time).
    live = [c.reads for c in clusters if not c.is_lost]
    strands = TwoWayReconstructor().reconstruct_many(
        live, matrix.strand_length
    )
    print(f"batched consensus: {len(strands)} strands of "
          f"{len(strands[0])} bases reconstructed in one call")


if __name__ == "__main__":
    main()
