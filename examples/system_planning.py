#!/usr/bin/env python
"""Planning a retrieval campaign: estimate the channel, then budget reads.

A storage operator retrieving decades-old DNA has no idea what today's
sequencer does to it (the paper's core argument against provisioning for
an assumed skew). The workflow demonstrated here:

1. sequence a small *pilot* at low coverage;
2. estimate the channel's error rates blindly (consensus as reference);
3. search for the minimum safe coverage at the estimated noise level,
   for both the baseline layout and Gini;
4. convert the difference into sequencing-cost savings.

Run with::

    python examples/system_planning.py
"""

import numpy as np

from repro.analysis import CostModel, min_coverage_for_error_free
from repro.analysis.channel_estimation import estimate_channel
from repro.channel import ErrorModel, SequencingSimulator, FixedCoverage
from repro.codec import random_bases
from repro.consensus import TwoWayReconstructor
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

TRUE_RATE = 0.075  # hidden from the operator
MATRIX = MatrixConfig(m=8, n_columns=100, nsym=18, payload_rows=12)


def main() -> None:
    rng = np.random.default_rng(11)

    # --- 1. pilot sequencing ------------------------------------------------
    pilot_strands = [random_bases(MATRIX.strand_length, rng) for _ in range(30)]
    channel = SequencingSimulator(
        ErrorModel.uniform(TRUE_RATE), FixedCoverage(8)
    )
    clusters = channel.sequence(pilot_strands, rng)

    # --- 2. blind channel estimation ----------------------------------------
    reconstructor = TwoWayReconstructor()
    references = [
        reconstructor.reconstruct(c.reads, MATRIX.strand_length)
        for c in clusters
    ]
    estimate = estimate_channel(references, [c.reads for c in clusters])
    print("pilot channel estimate (truth hidden at "
          f"{TRUE_RATE:.1%} total, uniform split):")
    print(f"  total rate : {estimate.total_rate:.2%}")
    print(f"  insertions : {estimate.p_insertion:.2%}")
    print(f"  deletions  : {estimate.p_deletion:.2%}")
    print(f"  subs       : {estimate.p_substitution:.2%}")
    print(f"  indel frac : {estimate.indel_fraction:.0%}\n")

    # --- 3. coverage planning at the estimated noise level ------------------
    coverages = range(2, 24)
    plan = {}
    for layout in ("baseline", "gini"):
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout=layout))
        plan[layout] = min_coverage_for_error_free(
            pipeline, estimate.total_rate, coverages, trials=2, rng=1,
        )
        print(f"{layout:9s}: plan for coverage {plan[layout]:.1f}")

    # --- 4. cost conversion ----------------------------------------------------
    cost = CostModel(primer_overhead_bases=40)
    read_saving = cost.read_saving(MATRIX, plan["baseline"], plan["gini"])
    print(f"\nsequencing-cost saving from Gini at the planned coverages: "
          f"{read_saving:.0%}")
    print(f"write cost per unit: {cost.write_cost(MATRIX):.0f} units, "
          f"{cost.write_cost_per_data_bit(MATRIX)*8:.3f} units/byte")


if __name__ == "__main__":
    main()
