#!/usr/bin/env python
"""Gini's read-cost and write-cost savings.

Miniature of the paper's Figures 12 and 13: measures the minimum
sequencing coverage for exact, error-free decoding of a unit under the
baseline layout and under Gini, across error rates; then fixes the error
rate and shrinks Gini's *effective* redundancy until it stops matching
the baseline's coverage. Run with::

    python examples/read_cost_savings.py
"""

from repro.analysis import min_coverage_for_error_free, min_coverage_vs_redundancy
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=100, nsym=18, payload_rows=12)


def main() -> None:
    coverages = range(2, 24)
    print("minimum coverage for error-free decoding")
    print("error-rate   baseline   gini    saving")
    for rate in (0.06, 0.12):
        base = min_coverage_for_error_free(
            DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="baseline")),
            rate, coverages, trials=2, rng=0,
        )
        gini = min_coverage_for_error_free(
            DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="gini")),
            rate, coverages, trials=2, rng=0,
        )
        saving = 100 * (base - gini) / base
        print(f"{rate:10.0%} {base:10.1f} {gini:6.1f} {saving:8.1f}%")

    print("\nGini: min coverage vs effective redundancy (error rate 9%)")
    base_reference = min_coverage_for_error_free(
        DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="baseline")),
        0.09, coverages, trials=2, rng=0,
    )
    print(f"baseline reference at full redundancy: {base_reference:.1f}")
    print("effective-redundancy   gini-min-coverage")
    for nsym, coverage in min_coverage_vs_redundancy(
        MATRIX, "gini", 0.09,
        effective_nsym_values=(18, 14, 10, 7),
        coverages=coverages, trials=2, rng=0,
    ):
        marker = "  <= matches baseline" if coverage <= base_reference else ""
        print(f"{100 * nsym / MATRIX.n_columns:20.1f}% {coverage:16.1f}{marker}")


if __name__ == "__main__":
    main()
