#!/usr/bin/env python
"""Visualize the reliability skew (the paper's Figures 3 and 4).

Measures the per-position error probability of one-way and two-way trace
reconstruction over a noisy cluster and renders both curves as ASCII
charts. Run with::

    python examples/skew_profile.py
"""

from repro.analysis import positional_error_profile
from repro.analysis.plotting import ascii_chart
from repro.channel import ErrorModel
from repro.consensus import OneWayReconstructor, TwoWayReconstructor

LENGTH = 200
ERROR_RATE = 0.05
COVERAGE = 5
TRIALS = 60


def main() -> None:
    print(f"profiling reconstruction of L={LENGTH} strands "
          f"(p={ERROR_RATE:.0%}, N={COVERAGE}, {TRIALS} trials) ...\n")
    one_way = positional_error_profile(
        OneWayReconstructor(), LENGTH, ErrorModel.uniform(ERROR_RATE),
        COVERAGE, trials=TRIALS, rng=0,
    )
    two_way = positional_error_profile(
        TwoWayReconstructor(), LENGTH, ErrorModel.uniform(ERROR_RATE),
        COVERAGE, trials=TRIALS, rng=0,
    )
    smooth = 10
    chart = ascii_chart(
        {
            "one-way": one_way.reshape(-1, smooth).mean(axis=1),
            "two-way": two_way.reshape(-1, smooth).mean(axis=1),
        },
        y_label="P(incorrect base)",
        x_label=f"position within the strand (0 .. {LENGTH})",
    )
    print(chart)
    print(
        "\nOne-way reconstruction degrades towards the far end (Fig 3);"
        "\nthe two-way scan keeps both ends reliable and peaks in the middle"
        " (Fig 4)."
        "\nThis positional bias is what Gini removes and DnaMapper exploits."
    )


if __name__ == "__main__":
    main()
