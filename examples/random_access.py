#!/usr/bin/env python
"""Random access in a shared DNA pool via PCR primers.

Two files are stored in the *same* simulated test tube, each tagged with
its own primer pair (the paper's Section 2.1 key-value model). Retrieval
of one file: PCR selection by primer pair -> trimming -> greedy
edit-distance clustering (no oracle labels!) -> consensus -> RS decoding.

The whole retrieval runs on the columnar plane: the channel emits every
read of every molecule in one vectorized IDS pass (``ReadBatch``), PCR
selection scores both primer ends of all reads through stacked banded
edit-DP (``select_batch``), and one ``store.read`` call clusters the
surviving pool with the batched greedy clusterer and decodes it —
assignment- and byte-identical to the scalar string-plane path, at a
fraction of the cost. Run with::

    python examples/random_access.py
"""

import numpy as np

from repro import (
    BatchedGreedyClusterer,
    DnaStore,
    ErrorModel,
    FixedCoverage,
    MatrixConfig,
    PipelineConfig,
    ReadRequest,
)
from repro.channel import BatchedChannelEngine
from repro.primers import PcrSelector, PrimerDesigner, attach_primers


def main() -> None:
    rng = np.random.default_rng(3)
    matrix = MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=8)
    store = DnaStore(PipelineConfig(matrix=matrix, layout="gini"))

    print("designing two mutually-distant primer pairs ...")
    pairs = PrimerDesigner(length=18, min_distance=8).design_set(2, rng=rng)

    pot = []
    payloads = {}
    for file_id, pair in enumerate(pairs):
        bits = rng.integers(0, 2, store.unit_capacity_bits, dtype=np.uint8)
        payloads[file_id] = bits
        image = store.encode(bits)
        for strand in image.units[0].strands:
            pot.append(attach_primers(strand, pair))
    rng.shuffle(pot)
    print(f"test tube contains {len(pot)} tagged molecules from 2 files")

    # One vectorized channel pass over the whole tube, then collapse the
    # per-molecule labels into a single shuffled pool: a sequencer does
    # not know which file (or molecule) a read came from.
    engine = BatchedChannelEngine(ErrorModel.uniform(0.03), FixedCoverage(6))
    batch = engine.sequence(pot, rng)
    pool = batch.pooled(rng=rng)
    print(f"sequenced {pool.n_reads} noisy reads (3% error, "
          f"{pool.total_bases} bases in one flat buffer)")

    target = 1
    selector = PcrSelector(pairs[target], max_errors=4)
    selected = selector.select_batch(pool)
    print(f"PCR-selected {selected.n_reads} reads carrying file {target}'s "
          f"primers (both ends matched and trimmed, zero-copy)")

    # One read() call does the rest: the batched greedy clusterer
    # recovers the molecules of the selected pool (q-gram signatures +
    # stacked banded edit-DP), consensus reconstructs every cluster in
    # one scan, and the batched RS chain corrects the codewords.
    result = store.read(ReadRequest(
        selected, payloads[target].size, pool=True,
        clusterer=BatchedGreedyClusterer(threshold=10),
        object_id=f"file-{target}",
    ))
    exact = bool(np.array_equal(result.bits, payloads[target]))
    print(f"decode of {result.object_id}: exact={exact} "
          f"clean={result.report.clean} "
          f"erasures={result.report.total_erased_columns}")

    # Ops finale: run the same retrieval as a *service* and read its
    # live health — the serving plane keeps always-on telemetry (no
    # tracer needed), and health() rolls it up with SLO verdicts.
    from repro import StoreService

    service = StoreService(store, cache_capacity=64, batch_window=8)
    service.put(f"file-{target}", selected, payloads[target].size,
                pool=True, clusterer=BatchedGreedyClusterer(threshold=10))
    for _ in range(3):
        service.submit(f"file-{target}")
        service.tick()
    health = service.health()
    print("service " + health.summary())
    print("  checks: " + ", ".join(
        f"{name}={verdict}" for name, verdict in sorted(health.checks.items())
    ))
    print(f"  events: {service.events.emitted} emitted "
          f"({len(service.events.records('complete'))} completions)")


if __name__ == "__main__":
    main()
