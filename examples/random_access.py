#!/usr/bin/env python
"""Random access in a shared DNA pool via PCR primers.

Two files are stored in the *same* simulated test tube, each tagged with
its own primer pair (the paper's Section 2.1 key-value model). Retrieval
of one file: PCR selection by primer pair -> trimming -> greedy
edit-distance clustering (no oracle labels!) -> consensus -> RS decoding.
Run with::

    python examples/random_access.py
"""

import numpy as np

from repro import DnaStoragePipeline, ErrorModel, MatrixConfig, PipelineConfig
from repro.cluster import GreedyClusterer
from repro.primers import PcrSelector, PrimerDesigner, attach_primers


def main() -> None:
    rng = np.random.default_rng(3)
    matrix = MatrixConfig(m=8, n_columns=40, nsym=8, payload_rows=8)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=matrix, layout="gini"))

    print("designing two mutually-distant primer pairs ...")
    pairs = PrimerDesigner(length=18, min_distance=8).design_set(2, rng=rng)

    pot = []
    payloads = {}
    for file_id, pair in enumerate(pairs):
        bits = rng.integers(0, 2, pipeline.capacity_bits, dtype=np.uint8)
        payloads[file_id] = bits
        unit = pipeline.encode(bits)
        for strand in unit.strands:
            pot.append(attach_primers(strand, pair))
    rng.shuffle(pot)
    print(f"test tube contains {len(pot)} tagged molecules from 2 files")

    model = ErrorModel.uniform(0.03)
    reads = []
    for strand in pot:
        reads.extend(model.apply_many(strand, 6, rng))
    rng.shuffle(reads)
    print(f"sequenced {len(reads)} noisy reads (3% error)")

    target = 1
    selector = PcrSelector(pairs[target], max_errors=4)
    selected = selector.select(reads)
    print(f"PCR-selected {len(selected)} reads carrying file {target}'s primers")

    clusters = GreedyClusterer(threshold=10).cluster(selected)
    clusters = [c for c in clusters if c.coverage >= 2]
    print(f"greedy clustering produced {len(clusters)} plausible clusters "
          f"(expected {matrix.n_columns})")

    decoded, report = pipeline.decode(clusters, pipeline.capacity_bits)
    exact = bool(np.array_equal(decoded, payloads[target]))
    print(f"decode: exact={exact} clean={report.clean} "
          f"erasures={len(report.erased_columns)}")


if __name__ == "__main__":
    main()
