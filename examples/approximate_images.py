#!/usr/bin/env python
"""Approximate storage of encrypted images with DnaMapper.

Reproduces the paper's headline DnaMapper scenario (its Figures 14/15) at
a small scale: three encrypted JPEG images plus a directory file are
packed into one encoding unit; the retrieval coverage is then reduced step
by step. Under the baseline mapping, quality collapses catastrophically;
under DnaMapper it degrades gracefully, because the bits that matter most
(directory, JPEG headers, early entropy stream) occupy the most reliable
molecule positions. Run with::

    python examples/approximate_images.py
"""

import numpy as np

from repro.analysis import ImageStoreExperiment
from repro.core import MatrixConfig
from repro.media import synth_image


def main() -> None:
    rng = np.random.default_rng(42)
    matrix = MatrixConfig(m=8, n_columns=200, nsym=37, payload_rows=24)
    images = [
        synth_image(64, 64, rng=rng),
        synth_image(96, 96, rng=rng),
        synth_image(48, 80, rng=rng),
    ]
    error_rate = 0.10
    coverages = [12, 8, 6, 5, 4, 3]

    print(f"storing {len(images)} encrypted images "
          f"(error rate {error_rate:.0%}, coverage sweep {coverages})\n")
    header = "coverage".ljust(10)
    for layout in ("baseline", "dnamapper"):
        header += f"{layout + ' mean-loss(dB)':>24}"
    print(header)

    experiments = {
        layout: ImageStoreExperiment(
            images, matrix, layout=layout, quality=65, rng=1,
        )
        for layout in ("baseline", "dnamapper")
    }
    pools = {
        layout: experiment.build_pool(error_rate, max_coverage=max(coverages),
                                      rng=2)
        for layout, experiment in experiments.items()
    }
    for coverage in coverages:
        row = str(coverage).ljust(10)
        for layout, experiment in experiments.items():
            result = experiment.retrieve(pools[layout].clusters_at(coverage))
            label = f"{result.mean_loss_db:.2f}"
            if result.n_catastrophic:
                label += f" ({result.n_catastrophic} lost)"
            row += label.rjust(24)
        print(row)

    print("\nPer-image losses for DnaMapper at the lowest coverage:")
    result = experiments["dnamapper"].retrieve(
        pools["dnamapper"].clusters_at(coverages[-1])
    )
    for stored, loss in zip(experiments["dnamapper"].images, result.losses_db):
        print(f"  {stored.name}: {loss:.2f} dB")
    print("\n(<= 1 dB is considered unnoticeable; the directory file always"
          " survives first.)")


if __name__ == "__main__":
    main()
