"""Figure 4: positional error distribution of two-way reconstruction.

Paper setup: P = 5%, N = 5, L = 200. Expected shape: low error at both
ends, with the peak moved to the middle of the strand (about half the
one-way peak height).
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import positional_error_profile
from repro.channel import ErrorModel
from repro.consensus import OneWayReconstructor, TwoWayReconstructor

LENGTH = 200
ERROR_RATE = 0.05
COVERAGE = 5
TRIALS = 120


def run_experiment(trials=TRIALS, rng=2022):
    return positional_error_profile(
        TwoWayReconstructor(),
        length=LENGTH,
        error_model=ErrorModel.uniform(ERROR_RATE),
        coverage=COVERAGE,
        trials=trials,
        rng=rng,
    )


def test_fig04_two_way_skew(benchmark):
    profile = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    buckets = profile.reshape(20, 10).mean(axis=1)
    print_series(
        "Fig 4: two-way positional error (P=5%, N=5, L=200)",
        [f"{10*i}-{10*i+9}" for i in range(20)],
        {"p_error": buckets.tolist()},
    )
    edges = np.concatenate([profile[:20], profile[-20:]]).mean()
    middle = profile[80:120].mean()
    # Low at both ends, peak in the middle.
    assert edges < 0.02
    assert middle > 2 * edges
    # The two-way peak sits well below the one-way far-end error.
    one_way = positional_error_profile(
        OneWayReconstructor(), LENGTH, ErrorModel.uniform(ERROR_RATE),
        COVERAGE, trials=60, rng=7,
    )
    assert middle < one_way[-40:].mean()
