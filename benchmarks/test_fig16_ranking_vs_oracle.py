"""Figure 16: the positional ranking heuristic versus the oracle ranking.

Paper setup: a single image stored *without error correction*; three
mappings are compared over a coverage sweep — the baseline (no priority
mapping), "our approach" (DnaMapper with the zero-metadata positional
heuristic), and an oracle that ranks every bit by brute-force measured
PSNR damage. Expected result: the heuristic tracks the oracle closely
(the oracle is not visibly better), and both dramatically outperform the
baseline as coverage drops.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis.experiments import CATASTROPHIC_LOSS_DB
from repro.channel import ErrorModel, ReadPool
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.core.ranking import identity_ranking, oracle_ranking
from repro.media import JpegCodec, quality_loss_db, synth_image
from repro.utils.bitio import bits_to_bytes, bytes_to_bits

MATRIX = MatrixConfig(m=8, n_columns=100, nsym=0, payload_rows=12)
ERROR_RATE = 0.08
COVERAGES = (10, 8, 6, 5, 4, 3)
POOL_REPEATS = 5


def _mean_loss(pipeline, ranking, bits, codec, image, clean, rng):
    unit = pipeline.encode(bits, ranking=ranking)
    series = []
    for coverage in COVERAGES:
        total = 0.0
        for _ in range(POOL_REPEATS):
            pool = ReadPool(unit.strands, ErrorModel.uniform(ERROR_RATE),
                            max_coverage=max(COVERAGES), rng=rng)
            decoded_bits, _ = pipeline.decode(
                pool.clusters_at(coverage), bits.size, ranking=ranking,
            )
            decoded, _ = codec.decode_robust(bits_to_bytes(decoded_bits))
            if decoded.shape != clean.shape:
                total += CATASTROPHIC_LOSS_DB
            else:
                total += quality_loss_db(image, clean, decoded)
        series.append(total / POOL_REPEATS)
    return series


def run_experiment(rng=2022):
    generator = np.random.default_rng(rng)
    codec = JpegCodec(quality=55)
    image = synth_image(48, 48, rng=generator)
    compressed = codec.encode(image)
    clean = codec.decode(compressed)
    bits = bytes_to_bits(compressed)
    assert bits.size <= MATRIX.data_bits

    baseline_pipe = DnaStoragePipeline(
        PipelineConfig(matrix=MATRIX, layout="baseline")
    )
    mapper_pipe = DnaStoragePipeline(
        PipelineConfig(matrix=MATRIX, layout="dnamapper")
    )
    oracle = oracle_ranking(compressed, codec=codec, original=image)
    return {
        "baseline": _mean_loss(baseline_pipe, None, bits, codec, image,
                               clean, generator),
        "ours": _mean_loss(mapper_pipe, identity_ranking(bits.size), bits,
                           codec, image, clean, generator),
        "oracle": _mean_loss(mapper_pipe, oracle, bits, codec, image,
                             clean, generator),
    }


def test_fig16_ranking_vs_oracle(benchmark):
    losses = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig 16: quality loss (dB) without ECC",
        list(COVERAGES),
        losses,
    )
    baseline = np.array(losses["baseline"])
    ours = np.array(losses["ours"])
    oracle = np.array(losses["oracle"])
    # Priority mapping beats the baseline once the channel bites.
    stressed = baseline > 3.0
    assert stressed.any()
    assert ours[stressed].mean() < 0.8 * baseline[stressed].mean()
    # The zero-metadata heuristic tracks the expensive oracle closely
    # (the paper: "does not perform visibly better").
    assert ours.mean() < oracle.mean() + 3.0
