"""Ablation: coverage dispersion (the paper's Gamma-coverage argument).

Section 4.1 argues that unequal ECC is doomed partly because *coverage is
never fixed across clusters*: it follows a Gamma distribution, so the
realized skew differs per cluster. This ablation measures the cost of
dispersion directly: at the same mean coverage, a dispersed channel
(small Gamma shape) produces strictly more decode failures than a fixed
one, and the gap narrows as the mean grows.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.channel import ErrorModel, ReadPool
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=24)
ERROR_RATE = 0.09
COVERAGES = (5, 7, 9, 12)
TRIALS = 4


def _exact_rate(coverage, dispersion_shape, rng):
    generator = np.random.default_rng(rng)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="gini"))
    exact = 0
    for _ in range(TRIALS):
        bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        pool = ReadPool(unit.strands, ErrorModel.uniform(ERROR_RATE),
                        max_coverage=3 * coverage, rng=generator,
                        dispersion_shape=dispersion_shape)
        decoded, report = pipeline.decode(pool.clusters_at(coverage), bits.size)
        exact += int(report.clean and np.array_equal(decoded, bits))
    return exact / TRIALS


def run_experiment(rng=2022):
    fixed = [_exact_rate(c, None, rng) for c in COVERAGES]
    dispersed = [_exact_rate(c, 2.0, rng) for c in COVERAGES]
    return fixed, dispersed


def test_ablation_dispersion(benchmark):
    fixed, dispersed = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Ablation: exact-decode rate, fixed vs Gamma-dispersed coverage (p=9%)",
        list(COVERAGES),
        {"fixed": fixed, "dispersed(shape=2)": dispersed},
    )
    fixed = np.array(fixed)
    dispersed = np.array(dispersed)
    # Dispersion never helps ...
    assert (dispersed <= fixed + 1e-9).all()
    # ... and hurts somewhere on the sweep.
    assert (dispersed < fixed).any()
    # Enough average coverage eventually buys exactness for both.
    assert fixed[-1] == 1.0
