"""Figure 11: per-codeword error distribution, baseline versus Gini.

Paper setup: error rate 9%, coverage 20, 82 codewords. Expected result:
the baseline's codewords in the middle rows collect several times more
errors than the edge rows (a pronounced peak), Gini's interleaving gives
every codeword a near-identical count, and the areas under both curves
(total errors) are the same.

Scaled setup: 24 codewords over 160 molecules; coverage is reduced along
with the strand length so that a comparable error mass survives consensus.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import errors_per_codeword, gini_coefficient
from repro.channel import ErrorModel, ReadPool
from repro.core import (
    BaselineLayout,
    DnaStoragePipeline,
    GiniLayout,
    MatrixConfig,
    PipelineConfig,
)

MATRIX = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=24)
ERROR_RATE = 0.09
COVERAGE = 6
TRIALS = 3


def run_experiment(rng=2022):
    generator = np.random.default_rng(rng)
    bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
    counts = {}
    for layout_name, layout_cls in (("baseline", BaselineLayout),
                                    ("gini", GiniLayout)):
        pipeline = DnaStoragePipeline(
            PipelineConfig(matrix=MATRIX, layout=layout_name)
        )
        total = np.zeros(MATRIX.payload_rows)
        for _ in range(TRIALS):
            unit = pipeline.encode(bits)
            pool = ReadPool(unit.strands, ErrorModel.uniform(ERROR_RATE),
                            max_coverage=COVERAGE, rng=generator)
            received = pipeline.receive(pool.clusters_at(COVERAGE))
            total += errors_per_codeword(
                layout_cls(MATRIX), unit.matrix, received.matrix,
                received.erased_columns,
            )
        counts[layout_name] = total / TRIALS
    return counts


def test_fig11_errors_per_codeword(benchmark):
    counts = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    baseline = counts["baseline"]
    gini = counts["gini"]
    print_series(
        "Fig 11: errors per codeword (p=9%)",
        list(range(MATRIX.payload_rows)),
        {"baseline": baseline.tolist(), "gini": gini.tolist()},
    )
    print(f"gini coefficient: baseline={gini_coefficient(baseline):.3f} "
          f"gini={gini_coefficient(gini):.3f}")

    rows = MATRIX.payload_rows
    middle = baseline[rows // 2 - 3: rows // 2 + 3].mean()
    edges = np.concatenate([baseline[:3], baseline[-3:]]).mean()
    # Baseline: prominent peak in the middle rows.
    assert middle > 2 * edges
    # Gini: flat — every codeword sees a similar number of errors.
    assert gini.max() < 1.6 * max(gini.mean(), 1.0)
    assert gini_coefficient(gini) < 0.5 * gini_coefficient(baseline)
    # Equal areas: Gini redistributes errors, it does not remove them.
    assert 0.75 < gini.sum() / baseline.sum() < 1.25
