"""Ablation: technology trends exacerbate the skew (paper Section 3.3 / 8).

Three trends the paper predicts will worsen the reliability bias:

* longer molecules (synthesis improves) -> harder consensus, higher peak;
* noisier sequencing (nanopore vs NGS) -> steeper curves;
* indel-heavy enzymatic synthesis -> more skew than NGS at equal rates.

This ablation measures the two-way peak error under each trend.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import positional_error_profile
from repro.channel import (
    ErrorModel,
    enzymatic_synthesis_profile,
    illumina_profile,
    nanopore_profile,
)
from repro.consensus import TwoWayReconstructor

COVERAGE = 6
TRIALS = 50
LENGTHS = (100, 200, 400)


def _peak(profile):
    length = len(profile)
    return profile[length // 2 - length // 8: length // 2 + length // 8].mean()


def run_experiment(rng=2022):
    reconstructor = TwoWayReconstructor()
    length_peaks = [
        _peak(positional_error_profile(
            reconstructor, length, ErrorModel.uniform(0.08), COVERAGE,
            trials=TRIALS, rng=rng,
        ))
        for length in LENGTHS
    ]
    profile_peaks = {
        "illumina@1%": _peak(positional_error_profile(
            reconstructor, 200, illumina_profile(), COVERAGE,
            trials=TRIALS, rng=rng,
        )),
        "nanopore@13%": _peak(positional_error_profile(
            reconstructor, 200, nanopore_profile(), COVERAGE,
            trials=TRIALS, rng=rng,
        )),
        "enzymatic@13%": _peak(positional_error_profile(
            reconstructor, 200,
            enzymatic_synthesis_profile(0.13), COVERAGE,
            trials=TRIALS, rng=rng,
        )),
    }
    return length_peaks, profile_peaks


def test_ablation_technology_trends(benchmark):
    length_peaks, profile_peaks = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_series(
        "Ablation: mid-strand peak error vs strand length (p=8%, N=6)",
        list(LENGTHS),
        {"peak": length_peaks},
    )
    print_series(
        "Ablation: mid-strand peak error by technology profile (L=200, N=6)",
        ["peak"],
        {name: [value] for name, value in profile_peaks.items()},
    )
    # Longer molecules -> monotonically worse peak.
    assert length_peaks[0] < length_peaks[1] < length_peaks[2]
    # NGS is easy; nanopore rates make the middle substantially unreliable.
    assert profile_peaks["illumina@1%"] < 0.02
    assert profile_peaks["nanopore@13%"] > 10 * profile_peaks["illumina@1%"]
    # At the same total rate, the indel-heavy enzymatic profile is worse
    # than the (more substitution-heavy) nanopore breakdown.
    assert profile_peaks["enzymatic@13%"] > profile_peaks["nanopore@13%"]
