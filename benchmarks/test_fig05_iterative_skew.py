"""Figure 5: the skew persists in a state-of-the-art reconstructor.

Paper setup: L = 200, parameter study over (P, N) with uniform error
breakdown, plus two special channels: 5% insertions + 5% deletions (no
substitutions), and 10% substitutions only. The paper's observations:

* the skew (middle peak) is present for every indel-carrying channel;
* higher P raises the peak, higher N lowers it;
* substitutions alone produce *no* skew (flat, near-zero curve);
* indels+substitutions is strictly harder than indels alone.

The reconstructor here is our iterative realign-and-vote algorithm, the
stand-in for Sabary et al. (see DESIGN.md substitutions).
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import positional_error_profile
from repro.channel import ErrorModel
from repro.consensus import IterativeReconstructor

LENGTH = 200
TRIALS = 60

CHANNELS = {
    "P=5%,N=5": (ErrorModel.uniform(0.05), 5),
    "P=10%,N=5": (ErrorModel.uniform(0.10), 5),
    "P=15%,N=5": (ErrorModel.uniform(0.15), 5),
    "P=15%,N=6": (ErrorModel.uniform(0.15), 6),
    "5%ins+5%del": (ErrorModel.indels_only(0.05, 0.05), 5),
    "10%sub": (ErrorModel.substitutions_only(0.10), 5),
}


def run_experiment(trials=TRIALS, rng=2022):
    profiles = {}
    for name, (model, coverage) in CHANNELS.items():
        profiles[name] = positional_error_profile(
            IterativeReconstructor(), LENGTH, model, coverage,
            trials=trials, rng=rng,
        )
    return profiles


def test_fig05_iterative_skew(benchmark):
    profiles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    buckets = {
        name: profile.reshape(20, 10).mean(axis=1)
        for name, profile in profiles.items()
    }
    print_series(
        "Fig 5: skew of the iterative reconstructor (L=200)",
        [f"{10*i}" for i in range(20)],
        {name: values.tolist() for name, values in buckets.items()},
    )

    def middle(profile):
        return profile[70:130].mean()

    def edges(profile):
        return np.concatenate([profile[:20], profile[-20:]]).mean()

    # Skew present for all indel-carrying channels.
    for name in ("P=5%,N=5", "P=10%,N=5", "P=15%,N=5", "P=15%,N=6",
                 "5%ins+5%del"):
        assert middle(profiles[name]) > 2 * edges(profiles[name]), name
    # Peak grows with P ...
    assert middle(profiles["P=15%,N=5"]) > middle(profiles["P=10%,N=5"])
    assert middle(profiles["P=10%,N=5"]) > middle(profiles["P=5%,N=5"])
    # ... and shrinks with an extra read.
    assert middle(profiles["P=15%,N=6"]) < middle(profiles["P=15%,N=5"])
    # Substitutions alone: no skew, easy reconstruction (flat purple line).
    assert profiles["10%sub"].mean() < 0.02
    assert middle(profiles["10%sub"]) < 1.5 * max(edges(profiles["10%sub"]), 1e-3)
    # Substitutions amplify indels (green vs purple in the paper): P=15%
    # uniform carries the same 10% indel mass as the indel-only channel
    # *plus* 5% substitutions, and is strictly harder in the middle.
    assert middle(profiles["P=15%,N=5"]) > middle(profiles["5%ins+5%del"])
