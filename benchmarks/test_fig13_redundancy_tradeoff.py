"""Figure 13: minimum coverage vs effective redundancy at a fixed 9% error.

Paper setup: Gini's redundancy is progressively reduced (by injecting
controlled erasures that consume parity) from 18.4% down to 6%, and the
minimum coverage for error-free decoding is measured; the baseline at
full 18.4% redundancy is the reference line. The paper's finding: Gini
still matches the baseline's coverage with only ~6% redundancy — a 67%
redundancy reduction, i.e. ~12.5% of total synthesis cost.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import min_coverage_for_error_free, min_coverage_vs_redundancy
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=24)
ERROR_RATE = 0.09
COVERAGES = range(2, 30)
TRIALS = 3
# nsym=30 of 160 columns is 18.75% redundancy; the sweep mirrors the
# paper's 18.4% -> 15% -> 12% -> 9% -> 6% effective-redundancy axis.
EFFECTIVE_NSYM = (30, 24, 19, 14, 10)


def run_experiment(rng=2022):
    gini_curve = min_coverage_vs_redundancy(
        MATRIX, layout="gini", error_rate=ERROR_RATE,
        effective_nsym_values=EFFECTIVE_NSYM,
        coverages=COVERAGES, trials=TRIALS, rng=rng,
    )
    baseline_reference = min_coverage_for_error_free(
        DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="baseline")),
        ERROR_RATE, COVERAGES, trials=TRIALS, rng=rng,
    )
    return gini_curve, baseline_reference


def test_fig13_redundancy_tradeoff(benchmark):
    gini_curve, baseline_reference = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    redundancy_pct = [100 * n / MATRIX.n_columns for n, _ in gini_curve]
    coverages = [c for _, c in gini_curve]
    print_series(
        f"Fig 13: min coverage vs effective redundancy (p=9%); "
        f"baseline@18.75% = {baseline_reference:.1f}",
        [f"{p:.1f}%" for p in redundancy_pct],
        {"gini_min_cov": coverages},
    )
    # Less redundancy -> (weakly) more coverage needed.
    assert all(a <= b + 1e-9 for a, b in zip(coverages, coverages[1:]))
    # Full-redundancy Gini beats the baseline reference ...
    assert coverages[0] < baseline_reference
    # ... and some strictly smaller redundancy still matches the baseline
    # (the paper's 67%-redundancy-reduction headline, scaled).
    matching = [p for p, c in zip(redundancy_pct, coverages)
                if c <= baseline_reference]
    assert min(matching) < redundancy_pct[0]
