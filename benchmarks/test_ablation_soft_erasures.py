"""Ablation: confidence-assisted decoding (soft erasures).

An extension beyond the paper enabled by the posterior reconstructor:
per-position posterior confidence flags the consensus's own unreliable
symbols as *erasures* for the RS layer. Erasures cost half of what errors
cost (E erasures vs E/2 errors per codeword), so correctly flagged cells
stretch the correction budget; the advisory-with-fallback design keeps
wrong flags harmless.

Measured: codeword failures per unit, with and without soft erasures, at
a stressed operating point.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.channel import ErrorModel, ReadPool
from repro.consensus import PosteriorReconstructor
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16)
ERROR_RATE = 0.10
COVERAGES = (5, 6, 7)
TRIALS = 3
THRESHOLD = 0.75


def run_experiment(rng=2022):
    model = ErrorModel.uniform(ERROR_RATE)
    pipeline = DnaStoragePipeline(
        PipelineConfig(matrix=MATRIX, layout="gini"),
        reconstructor=PosteriorReconstructor(channel=model),
    )
    generator = np.random.default_rng(rng)
    plain_failures = []
    assisted_failures = []
    for coverage in COVERAGES:
        plain = assisted = 0
        for _ in range(TRIALS):
            bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
            unit = pipeline.encode(bits)
            pool = ReadPool(unit.strands, model, max_coverage=coverage,
                            rng=generator)
            clusters = pool.clusters_at(coverage)
            received_plain = pipeline.receive(clusters)
            _, report = pipeline.correct(received_plain, bits.size)
            plain += len(report.failed_codewords)
            received_soft = pipeline.receive(
                clusters, confidence_threshold=THRESHOLD
            )
            _, report = pipeline.correct(received_soft, bits.size)
            assisted += len(report.failed_codewords)
        plain_failures.append(plain / TRIALS)
        assisted_failures.append(assisted / TRIALS)
    return plain_failures, assisted_failures


def test_ablation_soft_erasures(benchmark):
    plain, assisted = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        f"Ablation: failed codewords/unit, plain vs soft erasures "
        f"(p={ERROR_RATE:.0%}, threshold={THRESHOLD})",
        list(COVERAGES),
        {"plain": plain, "soft_erasures": assisted},
    )
    plain = np.array(plain)
    assisted = np.array(assisted)
    # Advisory erasures with fallback are never worse ...
    assert (assisted <= plain + 1e-9).all()
    # ... and help somewhere in the stressed region.
    assert (assisted < plain).any()
