"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one figure of the paper at reduced scale (see
DESIGN.md's substitution table) and prints the series the paper plots, so
the run log doubles as the reproduction record in EXPERIMENTS.md.

Besides the printed tables, every run leaves machine-readable evidence in
``benchmarks/out/``:

* ``BENCH_<slug>.json`` — the x values and series of each printed table
  (written by :func:`print_series`);
* ``BENCH_timings.json`` — wall-clock seconds per benchmark test,
  merge-updated across runs so partial reruns refresh only their rows;
* ``MANIFEST_<slug>.json`` — one run manifest per benchmark test (the
  :func:`bench_tracer` autouse fixture activates a tracer around every
  test): per-stage wall times and pipeline counters, so
  ``check_trend.py --stage`` can flag a single stage's share of wall
  time drifting even when the total stays within tolerance.

The artifacts are committed deliberately: like EXPERIMENTS.md, they are
the reproduction record (and the perf evidence PRs point at), so series
and timing changes show up in review diffs.
"""

import hashlib
import json
import re
from pathlib import Path

import numpy as np
import pytest

OUT_DIR = Path(__file__).parent / "out"


def _slugify(title):
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    if len(slug) > 60:
        # Keep long titles collision-free: two titles sharing a 60-char
        # prefix must not overwrite each other's evidence file.
        digest = hashlib.md5(slug.encode("ascii")).hexdigest()[:8]
        slug = f"{slug[:60].rstrip('_')}_{digest}"
    return slug


def print_series(title, xs, series, timing_series=()):
    """Print an aligned table: one x column plus one column per series.

    Also dumps the table to ``benchmarks/out/BENCH_<slug>.json`` so runs
    can be diffed and plotted without scraping the log.

    ``timing_series`` names the series whose values are wall-clock
    measurements (requests/sec, latency percentiles): they vary run to
    run, so ``check_trend.py`` reports them as notes instead of
    drift-gating them at ``rtol`` like the deterministic series (the
    per-test wall clock in ``BENCH_timings.json`` still gates gross
    regressions).
    """
    print(f"\n=== {title} ===")
    names = list(series)
    header = "x".ljust(10) + "".join(name.rjust(16) for name in names)
    print(header)
    for i, x in enumerate(xs):
        row = str(x).ljust(10)
        for name in names:
            value = series[name][i]
            row += (f"{value:.4f}" if isinstance(value, float) else str(value)).rjust(16)
        print(row)

    OUT_DIR.mkdir(exist_ok=True)

    def jsonify_x(value):
        # numpy scalars are not JSON types but must not stringify either:
        # the evidence keeps numeric axes numeric so the trend gate and
        # plotting can compare them as numbers.
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)):
            return float(value)
        return str(value)

    payload = {
        "title": title,
        "x": [jsonify_x(x) for x in xs],
        "series": {
            name: [float(v) if isinstance(v, (int, float, np.integer,
                                              np.floating)) else str(v)
                   for v in values]
            for name, values in series.items()
        },
    }
    timing_series = [name for name in timing_series if name in series]
    if timing_series:
        payload["timing_series"] = timing_series
    path = OUT_DIR / f"BENCH_{_slugify(title)}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")


def _merge_timing(test_id, seconds):
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_timings.json"
    try:
        timings = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        timings = {}
    timings[test_id] = round(seconds, 3)
    path.write_text(json.dumps(timings, indent=2, sort_keys=True) + "\n")


def pytest_runtest_logreport(report):
    """Record each benchmark's call-phase wall clock as JSON.

    The hook fires for every test in the session, so it filters to this
    directory's tests — a combined ``pytest benchmarks tests`` run must
    not leak unit-test timings into the benchmark record.
    """
    if (report.when == "call" and report.passed
            and report.nodeid.startswith("benchmarks/")):
        _merge_timing(report.nodeid, report.duration)


@pytest.fixture
def bench_rng():
    return np.random.default_rng(2022)


@pytest.fixture(autouse=True)
def bench_tracer(request):
    """Trace every benchmark test and write its manifest next to the
    series evidence.

    The manifest (``MANIFEST_<slug>.json``) records the per-stage wall
    times and pipeline counters of everything the test decoded, which is
    what ``check_trend.py --stage`` gates on. Tests that never touch an
    instrumented path leave no spans and no manifest. Per-decode store
    manifests are switched off (``auto_manifest``): a sweep decodes
    hundreds of times and only the end-of-test aggregate matters here.
    """
    from repro.observability import Tracer, build_manifest, use_tracer

    tracer = Tracer()
    tracer.auto_manifest = False
    tracer.context["nodeid"] = request.node.nodeid
    tracer.context["bench_seed"] = 2022
    with use_tracer(tracer):
        yield tracer
    if not tracer.roots:
        return
    OUT_DIR.mkdir(exist_ok=True)
    manifest = build_manifest(tracer, request.node.nodeid)
    manifest.save(OUT_DIR / f"MANIFEST_{_slugify(request.node.nodeid)}.json")
