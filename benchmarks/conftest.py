"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one figure of the paper at reduced scale (see
DESIGN.md's substitution table) and prints the series the paper plots, so
the run log doubles as the reproduction record in EXPERIMENTS.md.
"""

import numpy as np
import pytest


def print_series(title, xs, series):
    """Print an aligned table: one x column plus one column per series."""
    print(f"\n=== {title} ===")
    names = list(series)
    header = "x".ljust(10) + "".join(name.rjust(16) for name in names)
    print(header)
    for i, x in enumerate(xs):
        row = str(x).ljust(10)
        for name in names:
            value = series[name][i]
            row += (f"{value:.4f}" if isinstance(value, float) else str(value)).rjust(16)
        print(row)


@pytest.fixture
def bench_rng():
    return np.random.default_rng(2022)
