"""LSH scaling figure: sub-linear candidate generation vs the greedy scan.

The batched greedy clusterer screens every unassigned read against every
new representative, so its work grows as pool x clusters — quadratic in
pool size at fixed coverage. :class:`~repro.cluster.LSHClusterer`
generates candidate pairs from minhash-band bin collisions only (then
verifies each at exact edit distance), so its candidate count should
track the pool near-linearly. This figure measures both clusterers over
a quickstart-channel pool sweep (68-base strands, 6% errors, coverage
10, 10k -> 50k reads): wall-clock seconds, the LSH candidate/verified
pair counters, recovery quality against the ground truth the simulator
knows, and the headline speedup.

Expected shape: precision pins at 1.0 for both paths at every size
(every LSH merge is DP-verified at the same threshold the greedy scan
uses), recall stays within a point of the greedy scan, LSH wall-clock
leads by well over the 5x acceptance floor at 50k reads, and LSH
candidate pairs per read grow far slower than the pool (the greedy
scan's screened pairs per read grow ~linearly with it — that is the
quadratic).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.cluster import (
    BatchedGreedyClusterer,
    LSHClusterer,
    pair_precision_recall,
)
from repro.codec import random_bases
from repro.observability import get_tracer

POOL_SIZES = (10_000, 25_000, 50_000)
STRAND_LENGTH = 68
ERROR_RATE = 0.06
COVERAGE = 10

#: Acceptance floor: LSH wall-clock lead over the greedy scan at the
#: largest pool of the sweep.
SPEEDUP_FLOOR = 5.0

#: Near-linearity gate: over the 5x pool growth of the sweep, LSH
#: candidate pairs *per read* may grow at most this much (the greedy
#: scan's screened pairs per read grow ~5x — fully quadratic).
PAIR_GROWTH_CEILING = 3.0


def _pool(n_reads, seed):
    rng = np.random.default_rng(seed)
    strands = [random_bases(STRAND_LENGTH, rng)
               for _ in range(n_reads // COVERAGE)]
    simulator = SequencingSimulator(
        ErrorModel.uniform(ERROR_RATE), FixedCoverage(COVERAGE)
    )
    labeled = simulator.sequence_batch(strands, rng)
    permutation = rng.permutation(labeled.n_reads)
    truth = labeled.cluster_ids[permutation]
    pool = labeled.pooled()  # one unlabeled pool over the sweep's strands
    pool = type(pool)(
        pool.buffer, pool.offsets[permutation], pool.lengths[permutation],
        pool.cluster_ids, n_clusters=pool.n_clusters,
    )
    return pool, truth


def _timed_assign(kind, clusterer, pool):
    """(seconds, assignment, counter deltas) of one clustering run.

    Counters accumulate in the session tracer across the whole sweep, so
    each run's contribution is the snapshot delta around it. The span
    puts both clusterers' runs in this figure's manifest.
    """
    tracer = get_tracer()
    before = dict(tracer.metrics.snapshot()["counters"])
    with tracer.span(f"bench.lsh_scaling.{kind}", n_reads=pool.n_reads):
        start = time.perf_counter()
        assignment, _ = clusterer.assign(pool)
        elapsed = time.perf_counter() - start
    after = tracer.metrics.snapshot()["counters"]
    deltas = {name: value - before.get(name, 0)
              for name, value in after.items()}
    return elapsed, assignment, deltas


def _one_size(n_reads, rng):
    pool, truth = _pool(n_reads, rng)
    lsh = LSHClusterer.for_strand_length(STRAND_LENGTH)
    greedy = BatchedGreedyClusterer.for_strand_length(STRAND_LENGTH)

    lsh_s, lsh_assignment, lsh_counters = _timed_assign("lsh", lsh, pool)
    greedy_s, greedy_assignment, greedy_counters = _timed_assign(
        "greedy", greedy, pool
    )
    lsh_precision, lsh_recall = pair_precision_recall(truth, lsh_assignment)
    greedy_precision, greedy_recall = pair_precision_recall(
        truth, greedy_assignment
    )
    return {
        "lsh_seconds": lsh_s,
        "greedy_seconds": greedy_s,
        "speedup": greedy_s / lsh_s,
        "lsh_pairs_per_read":
            lsh_counters["cluster.lsh.candidate_pairs"] / pool.n_reads,
        "lsh_verified_per_read":
            lsh_counters["cluster.lsh.verified_pairs"] / pool.n_reads,
        "greedy_pairs_per_read":
            greedy_counters["cluster.pairs_screened"] / pool.n_reads,
        "lsh_precision": lsh_precision,
        "lsh_recall": lsh_recall,
        "greedy_precision": greedy_precision,
        "greedy_recall": greedy_recall,
    }


def run_experiment(rng=2022):
    return [_one_size(n, rng) for n in POOL_SIZES]


@pytest.mark.slow
@pytest.mark.paperscale
def test_fig_lsh_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Pair counters and quality are seeded and byte-stable — they are
    # the trend-gated evidence; the wall-clock columns are machine
    # noise, listed as timing series so check_trend.py reports instead
    # of gating them.
    print_series(
        f"Fig L: LSH vs greedy clustering scaling "
        f"(L={STRAND_LENGTH}, e={ERROR_RATE:.0%}, N={COVERAGE})",
        list(POOL_SIZES),
        {
            key: [row[key] for row in rows]
            for key in (
                "lsh_seconds", "greedy_seconds", "speedup",
                "lsh_pairs_per_read", "lsh_verified_per_read",
                "greedy_pairs_per_read",
                "lsh_precision", "lsh_recall",
                "greedy_precision", "greedy_recall",
            )
        },
        timing_series=("lsh_seconds", "greedy_seconds", "speedup"),
    )
    # Exact verification means neither path ever merges distinct
    # strands.
    assert all(row["lsh_precision"] == 1.0 for row in rows)
    assert all(row["greedy_precision"] == 1.0 for row in rows)
    # LSH recovery stays within a point of the exact greedy scan.
    assert all(row["lsh_recall"] > row["greedy_recall"] - 0.01
               for row in rows)
    # The headline: the acceptance floor at the largest pool.
    assert rows[-1]["speedup"] >= SPEEDUP_FLOOR, (
        f"LSH led greedy by only {rows[-1]['speedup']:.1f}x at "
        f"{POOL_SIZES[-1]} reads; the floor is {SPEEDUP_FLOOR}x"
    )
    # Near-linear candidate growth: pairs per read must not track the
    # pool. The greedy scan's screened pairs per read DO (that is the
    # quadratic this figure exists to show).
    lsh_growth = (rows[-1]["lsh_pairs_per_read"]
                  / rows[0]["lsh_pairs_per_read"])
    greedy_growth = (rows[-1]["greedy_pairs_per_read"]
                     / rows[0]["greedy_pairs_per_read"])
    assert lsh_growth < PAIR_GROWTH_CEILING, (
        f"LSH candidate pairs per read grew {lsh_growth:.2f}x over a "
        f"{POOL_SIZES[-1] / POOL_SIZES[0]:.0f}x pool sweep; the "
        f"near-linearity ceiling is {PAIR_GROWTH_CEILING}x"
    )
    assert lsh_growth < greedy_growth
