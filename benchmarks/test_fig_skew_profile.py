"""Skew-scenario figure: ramped positional error rates vs the uniform channel.

The paper evaluates reliability skew under a *uniform* IDS channel — all
of the positional bias it reports is created by the reconstruction
algorithms themselves. The `ErrorRateMap` machinery generalizes the
channel: here the per-position rates ramp linearly along the strand
(modeling end-of-strand degradation) while a matched-mean uniform channel
provides the control, and `analysis.positional_confidence_profile` pairs
each realized error curve with the posterior's per-position confidence.
Expected shape: under the ramp the error concentrates in the high-rate
tail well beyond the algorithmic skew of the uniform control, and the
posterior confidence dips exactly where the injected rate peaks — the
soft output *sees* the channel skew without being told about it.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import positional_confidence_profile
from repro.channel import ErrorModel, ErrorRateMap
from repro.consensus import PosteriorReconstructor

LENGTH = 120
BASE_RATE = 0.02
SLOPE = 6.0  # tail rate = SLOPE x head rate
MEAN_RATE = BASE_RATE * (1.0 + SLOPE) / 2.0
COVERAGE = 6
TRIALS = 150
BUCKETS = 12


def ramped_map():
    weights = np.linspace(1.0, SLOPE, LENGTH)
    return ErrorRateMap.scaled(ErrorModel.uniform(BASE_RATE), weights)


def run_experiment(trials=TRIALS, rng=2022):
    """Both scenarios through the fully batched confidence path; the
    reconstructor's channel prior is the same (matched-mean uniform)
    model in both runs, so any confidence difference is *observed*, not
    assumed."""
    reconstructor = PosteriorReconstructor(
        channel=ErrorModel.uniform(MEAN_RATE)
    )
    uniform_err, uniform_conf = positional_confidence_profile(
        reconstructor, length=LENGTH,
        error_model=ErrorModel.uniform(MEAN_RATE),
        coverage=COVERAGE, trials=trials, rng=rng,
    )
    ramp_err, ramp_conf = positional_confidence_profile(
        reconstructor, length=LENGTH, error_model=ramped_map(),
        coverage=COVERAGE, trials=trials, rng=rng,
    )
    return uniform_err, uniform_conf, ramp_err, ramp_conf


def test_fig_skew_profile(benchmark):
    uniform_err, uniform_conf, ramp_err, ramp_conf = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    width = LENGTH // BUCKETS

    def bucketed(profile):
        return profile.reshape(BUCKETS, width).mean(axis=1)

    print_series(
        f"Fig S: ramped-rate skew vs uniform channel "
        f"(mean P={MEAN_RATE:.0%}, N={COVERAGE}, L={LENGTH})",
        [f"{width*i}-{width*i+width-1}" for i in range(BUCKETS)],
        {
            "err_uniform": bucketed(uniform_err).tolist(),
            "err_ramp": bucketed(ramp_err).tolist(),
            "conf_uniform": bucketed(uniform_conf).tolist(),
            "conf_ramp": bucketed(ramp_conf).tolist(),
        },
    )
    head = slice(0, LENGTH // 3)
    tail = slice(2 * LENGTH // 3, LENGTH)
    # The injected ramp dominates the algorithmic skew: error concentrates
    # in the high-rate tail far beyond the uniform control's own rise.
    assert ramp_err[tail].mean() > 2 * ramp_err[head].mean()
    assert ramp_err[tail].mean() > 1.5 * uniform_err[tail].mean()
    # In the low-rate head the ramp runs *below* the matched-mean uniform
    # channel — the mean is the same, the mass just moved to the tail.
    assert ramp_err[head].mean() < uniform_err[head].mean()
    # The posterior's confidence flags the skew without being told: it
    # dips in the ramp's tail, below both its own head and the uniform
    # control at the same positions.
    assert ramp_conf[tail].mean() < ramp_conf[head].mean()
    assert ramp_conf[tail].mean() < uniform_conf[tail].mean()
