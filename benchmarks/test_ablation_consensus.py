"""Ablation: consensus algorithm choice and the BMA lookahead window.

Two design choices DESIGN.md calls out:

* the pipeline's default reconstructor is the two-way scan (as in the
  paper's pipeline [19]); this ablation quantifies the accuracy ladder
  one-way < two-way <= iterative on identical clusters;
* the error-classification lookahead of the scan (the paper's worked
  example uses 2; the implementation defaults to 3).
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.channel import ErrorModel
from repro.codec.basemap import bases_to_indices, random_bases
from repro.consensus import (
    IterativeReconstructor,
    OneWayReconstructor,
    TwoWayReconstructor,
)

LENGTH = 150
ERROR_RATE = 0.08
COVERAGE = 6
TRIALS = 60


def run_experiment(rng=2022):
    generator = np.random.default_rng(rng)
    algorithms = {
        "one-way": OneWayReconstructor(),
        "two-way": TwoWayReconstructor(),
        "iterative": IterativeReconstructor(),
        "lookahead=1": OneWayReconstructor(lookahead=1),
        "lookahead=2": OneWayReconstructor(lookahead=2),
        "lookahead=5": OneWayReconstructor(lookahead=5),
    }
    errors = {name: 0 for name in algorithms}
    model = ErrorModel.uniform(ERROR_RATE)
    for _ in range(TRIALS):
        original = random_bases(LENGTH, generator)
        reads = model.apply_many(original, COVERAGE, generator)
        target = bases_to_indices(original)
        for name, algorithm in algorithms.items():
            estimate = algorithm.reconstruct_indices(
                [bases_to_indices(r) for r in reads], LENGTH
            )
            errors[name] += int((estimate != target).sum())
    total = TRIALS * LENGTH
    return {name: count / total for name, count in errors.items()}


def test_ablation_consensus(benchmark):
    rates = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Ablation: consensus algorithms (p=8%, N=6, L=150), symbol error rate",
        ["error_rate"],
        {name: [value] for name, value in rates.items()},
    )
    # The accuracy ladder the pipeline's defaults rely on.
    assert rates["two-way"] < rates["one-way"]
    assert rates["iterative"] <= rates["two-way"] * 1.05
    # Lookahead 1 cannot distinguish error types reliably; 2+ can.
    assert rates["lookahead=2"] < rates["lookahead=1"]
    # Diminishing returns beyond the default window.
    assert rates["lookahead=5"] < rates["lookahead=1"]
