"""Figure 10: JPEG quality loss as a function of the corrupted bit position.

Paper setup: one JPEG image, one bit flipped at a time, PSNR loss of the
decoded result. Expected shape: maximum loss for bits at the beginning of
the file (header, early entropy stream), minimum for bits at the end —
the observation motivating DnaMapper's positional ranking heuristic.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis.experiments import CATASTROPHIC_LOSS_DB
from repro.media import JpegCodec, quality_loss_db, synth_image
from repro.utils.bitio import bits_to_bytes, bytes_to_bits

QUALITY = 70
SAMPLES = 700
BUCKETS = 10


def run_experiment(rng=2022):
    generator = np.random.default_rng(rng)
    codec = JpegCodec(quality=QUALITY)
    image = synth_image(160, 160, rng=generator)
    compressed = codec.encode(image)
    clean = codec.decode(compressed)
    bits = bytes_to_bits(compressed)
    n = len(bits)

    losses = np.zeros(BUCKETS)
    counts = np.zeros(BUCKETS)
    for position in generator.choice(n, min(SAMPLES, n), replace=False):
        flipped = bits.copy()
        flipped[position] ^= 1
        decoded, _ = codec.decode_robust(bits_to_bytes(flipped))
        if decoded.shape != clean.shape:
            loss = CATASTROPHIC_LOSS_DB
        else:
            loss = quality_loss_db(image, clean, decoded)
        bucket = min(BUCKETS - 1, int(position) * BUCKETS // n)
        losses[bucket] += loss
        counts[bucket] += 1
    return losses / np.maximum(counts, 1)


def test_fig10_jpeg_bit_profile(benchmark):
    profile = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig 10: mean PSNR loss (dB) by corrupted-bit position decile",
        [f"{10*i}-{10*i+9}%" for i in range(BUCKETS)],
        {"loss_db": profile.tolist()},
    )
    # Early bits hurt far more than late bits.
    assert profile[:3].mean() > 1.5 * profile[-3:].mean()
    # The final decile is the cheapest place to take a hit.
    assert profile[-1] <= profile.min() + 1.0
