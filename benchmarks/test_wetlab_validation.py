"""Section 6.2: the wetlab validation, simulated.

The paper synthesized two small images under all three organizations
(baseline, Gini, DnaMapper), sequenced with NGS at ~0.3% error, and
successfully decoded everything ("the impact of the proposed techniques
on ultra-low error rates with NGS is negligible"). The same toolchain is
exercised here with the NGS channel profile in place of the sequencer.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import ImageStoreExperiment
from repro.channel import ReadPool, illumina_profile
from repro.core import MatrixConfig
from repro.media import synth_image

MATRIX = MatrixConfig(m=8, n_columns=140, nsym=26, payload_rows=20)
NGS_ERROR_RATE = 0.003  # the paper's measured wetlab rate
COVERAGE = 6


def run_experiment(rng=2022):
    generator = np.random.default_rng(rng)
    images = [synth_image(64, 64, rng=generator) for _ in range(2)]
    outcomes = {}
    for layout in ("baseline", "gini", "dnamapper"):
        experiment = ImageStoreExperiment(
            images, MATRIX, layout=layout, quality=65, rng=generator,
        )
        pool = ReadPool(
            experiment.unit.strands,
            illumina_profile(NGS_ERROR_RATE),
            max_coverage=COVERAGE,
            rng=generator,
        )
        result = experiment.retrieve(pool.clusters_at(COVERAGE))
        outcomes[layout] = result
    return outcomes


def test_wetlab_validation(benchmark):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Wetlab validation (simulated NGS @ 0.3%): mean image loss (dB)",
        ["mean_loss_db", "clean_decode"],
        {
            layout: [result.mean_loss_db, float(result.decode_clean)]
            for layout, result in outcomes.items()
        },
    )
    # Every organization decodes every image perfectly, as in the paper.
    for layout, result in outcomes.items():
        assert result.archive_ok, layout
        assert result.decode_clean, layout
        assert result.mean_loss_db == 0.0, layout
        assert result.n_catastrophic == 0, layout
