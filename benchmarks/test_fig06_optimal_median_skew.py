"""Figure 6: the skew is fundamental — it survives *optimal* reconstruction.

Paper setup: binary alphabet, L = 20, p = 20%, N in {2, 4, 8, 16}; the
exact constrained edit-distance median is computed by brute force, and
ties are broken *adversarially* (choosing the candidate most accurate in
the middle, i.e. trying to create the opposite skew). Expected shape: a
middle-peaked curve whose peak decreases with N but never disappears.

Note: the profile peaks in the middle (not at one end) because the median
objective is direction-symmetric — like two-way reconstruction, both ends
are anchored.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import positional_error_profile_binary
from repro.channel import ErrorModel
from repro.consensus import OptimalMedianReconstructor

LENGTH = 20
ERROR_RATE = 0.20
COVERAGES = (2, 4, 8, 16)
TRIALS = 40


def run_experiment(trials=TRIALS, rng=2022):
    profiles = {}
    for coverage in COVERAGES:
        profiles[coverage] = positional_error_profile_binary(
            OptimalMedianReconstructor(n_alphabet=2, max_candidates=512),
            length=LENGTH,
            error_model=ErrorModel.uniform(ERROR_RATE),
            coverage=coverage,
            trials=trials,
            rng=rng,
            adversarial=True,
        )
    return profiles


def test_fig06_optimal_median_skew(benchmark):
    profiles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig 6: optimal median positional error (binary, L=20, p=20%)",
        list(range(LENGTH)),
        {f"N={n}": profiles[n].tolist() for n in COVERAGES},
    )

    def middle(profile):
        return profile[6:14].mean()

    def edges(profile):
        return np.concatenate([profile[:3], profile[-3:]]).mean()

    # Skew persists wherever the channel produces any errors at this
    # reduced scale, despite the adversarial tie-break. At deep coverage
    # (N >= 8) the optimal median can come out error-free across all 40
    # trials (the peak keeps shrinking with N); an all-zero profile is
    # consistent with the claim — an *opposite* skew never is.
    for coverage in COVERAGES:
        if profiles[coverage].any():
            assert middle(profiles[coverage]) > edges(profiles[coverage]), coverage
        else:
            assert coverage >= 8, (
                f"unexpected error-free profile at coverage {coverage}"
            )
    # More reads lower the peak but do not change the shape.
    assert middle(profiles[16]) < middle(profiles[2])
