"""Clustering figure: recovery quality and throughput of the columnar
greedy clusterer across channel error rates.

The paper's simulations sidestep clustering ("our data is perfectly
clustered", Section 6.1.2); the columnar clustering subsystem opens the
workload the paper assumes solved upstream — recovering the clusters of
an unlabeled sequencing pool, in the spirit of the Rashtchian et al.
clusterer it cites. This figure measures, per channel error rate on a
quickstart-shaped pool: pairwise precision/recall of the recovered
clusters against the ground truth the simulator knows, cluster-count
inflation (splits create extra clusters; merges would shrink it below
1.0 and break precision first), end-to-end unlabeled decode success,
and the batched clusterer's throughput in kreads/s.

Expected shape: precision pins at 1.0 throughout (distinct 68-base
strands are far beyond any same-cluster threshold), recall erodes
gently as rising error rates push same-strand read pairs past the
threshold and split clusters, and the split clusters inflate the
cluster count — while the unlabeled decode matches the perfect-
clustering (labeled) decode at every rate: split-off consensus strands
land on the same column (first claim wins), RS absorbs the rest, and
where the labeled decode itself fails (coverage 6 is under-provisioned
past ~6% error) the unlabeled one fails with it — clustering adds no
loss of its own.
"""

import time

import numpy as np

from benchmarks.conftest import print_series
from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.cluster import BatchedGreedyClusterer, pair_precision_recall
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=120, nsym=22, payload_rows=16)
ERROR_RATES = (0.02, 0.04, 0.06, 0.08, 0.10)
COVERAGE = 6


def _one_rate(rate, rng):
    generator = np.random.default_rng(rng)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX))
    bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
    unit = pipeline.encode(bits)
    simulator = SequencingSimulator(
        ErrorModel.uniform(rate), FixedCoverage(COVERAGE)
    )
    labeled = simulator.sequence_batch(unit.strands, generator)
    permutation = generator.permutation(labeled.n_reads)
    truth = labeled.cluster_ids[permutation]
    pool = labeled.pooled()  # one unlabeled pool over the unit
    pool = type(pool)(
        pool.buffer, pool.offsets[permutation], pool.lengths[permutation],
        pool.cluster_ids, n_clusters=pool.n_clusters,
    )
    clusterer = BatchedGreedyClusterer.for_strand_length(
        MATRIX.strand_length
    )
    start = time.perf_counter()
    predicted, n_clusters = clusterer.assign(pool)
    elapsed = time.perf_counter() - start
    precision, recall = pair_precision_recall(truth, predicted)
    decoded, report = pipeline.decode_pool(pool, bits.size,
                                           clusterer=clusterer)
    unlabeled_exact = report.clean and np.array_equal(decoded, bits)
    reference, labeled_report = pipeline.decode(labeled, bits.size)
    labeled_exact = labeled_report.clean \
        and np.array_equal(reference, bits)
    return {
        "precision": precision,
        "recall": recall,
        "clusters_ratio": n_clusters / MATRIX.n_columns,
        "decode_unlabeled": float(unlabeled_exact),
        "decode_labeled": float(labeled_exact),
        "kreads_per_s": pool.n_reads / elapsed / 1e3,
    }


def run_experiment(rng=2022):
    return [_one_rate(rate, rng) for rate in ERROR_RATES]


def test_fig_clustering(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The quality series are seeded and byte-stable, so they go into the
    # trend-gated evidence; throughput is wall-clock (machine-dependent)
    # and stays out of the series file — the perf-trend job tracks this
    # test's timing through BENCH_timings.json instead.
    print_series(
        f"Fig C: unlabeled-pool clustering recovery vs error rate "
        f"(N={COVERAGE}, L={MATRIX.strand_length})",
        [f"{rate:.0%}" for rate in ERROR_RATES],
        {
            key: [row[key] for row in rows]
            for key in ("precision", "recall", "clusters_ratio",
                        "decode_unlabeled", "decode_labeled")
        },
    )
    throughput = ", ".join(
        f"{rate:.0%}: {row['kreads_per_s']:.1f}"
        for rate, row in zip(ERROR_RATES, rows)
    )
    print(f"clustering throughput (kreads/s by error rate): {throughput}")
    precision = [row["precision"] for row in rows]
    recall = [row["recall"] for row in rows]
    # Distinct strands never merge at the default threshold.
    assert min(precision) == 1.0
    # Splits grow with the error rate but recovery stays high through
    # the quickstart regime.
    assert recall[0] > 0.99
    assert all(row["clusters_ratio"] >= 1.0 for row in rows)
    # The headline: clustering adds no decode loss over the paper's
    # perfect-clustering assumption, at any rate in the sweep.
    assert all(row["decode_unlabeled"] == row["decode_labeled"]
               for row in rows)
    assert rows[0]["decode_unlabeled"] == 1.0
