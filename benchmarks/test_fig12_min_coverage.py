"""Figure 12: minimum coverage for error-free decoding vs error rate.

Paper setup: error rates 3/6/9/12%, redundancy 18.4%; minimum sequencing
coverage needed for exact (error-free) decoding. Expected result: both
curves grow with the error rate, and Gini needs 20% (low error) to 30%
(high error) less coverage than the baseline — the paper's headline
read-cost saving.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import min_coverage_for_error_free
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=24)
ERROR_RATES = (0.03, 0.06, 0.09, 0.12)
COVERAGES = range(2, 26)
TRIALS = 3


def run_experiment(rng=2022):
    results = {"baseline": [], "gini": []}
    for layout in results:
        pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout=layout))
        for rate in ERROR_RATES:
            results[layout].append(min_coverage_for_error_free(
                pipeline, rate, COVERAGES, trials=TRIALS, rng=rng,
            ))
    return results


def test_fig12_min_coverage(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    baseline = results["baseline"]
    gini = results["gini"]
    savings = [100 * (b - g) / b for b, g in zip(baseline, gini)]
    print_series(
        "Fig 12: min coverage for error-free decoding",
        [f"{int(100*r)}%" for r in ERROR_RATES],
        {"baseline": baseline, "gini": gini, "saving_%": savings},
    )
    # Coverage demand grows with the error rate for both systems.
    assert baseline[-1] > baseline[0]
    assert gini[-1] >= gini[0]
    # Gini never needs more coverage, and saves clearly at high error rates
    # (the paper reports 20-30%).
    assert all(g <= b for g, b in zip(gini, baseline))
    assert savings[-1] >= 10.0
