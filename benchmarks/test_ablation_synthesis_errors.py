"""Ablation: synthesis errors cannot be bought off with coverage.

Section 8 of the paper separates error sources: sequencing errors are
independent per read (consensus cancels them with enough coverage), while
synthesis errors live in the molecule itself — every read repeats them,
so only the cross-molecule ECC can fix them. Enzymatic synthesis makes
this regime practically relevant.

Measured here: exact-decode rate versus coverage for (a) a pure
sequencing channel and (b) the same sequencing channel plus a small
synthesis error rate. The pure channel reaches 100% with coverage; the
two-stage channel plateaus below until the ECC margin, not the coverage,
decides — and Gini's flattened codewords cross that margin earlier than
the baseline's worst-case middle rows.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.channel import ErrorModel, FixedCoverage, TwoStageSequencer
from repro.channel.sequencer import SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=24)
SEQUENCING_RATE = 0.08
SYNTHESIS_RATE = 0.002
COVERAGES = (6, 10, 14, 18)
TRIALS = 4


def _exact_rate(layout, synthesis_rate, coverage, rng):
    generator = np.random.default_rng(rng)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout=layout))
    if synthesis_rate > 0:
        channel = TwoStageSequencer(
            ErrorModel.uniform(synthesis_rate),
            ErrorModel.uniform(SEQUENCING_RATE),
            FixedCoverage(coverage),
        )
    else:
        channel = SequencingSimulator(
            ErrorModel.uniform(SEQUENCING_RATE), FixedCoverage(coverage)
        )
    exact = 0
    for _ in range(TRIALS):
        bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        clusters = channel.sequence(unit.strands, generator)
        decoded, report = pipeline.decode(clusters, bits.size)
        exact += int(report.clean and np.array_equal(decoded, bits))
    return exact / TRIALS


def run_experiment(rng=2022):
    series = {
        "gini, seq-only": [
            _exact_rate("gini", 0.0, c, rng) for c in COVERAGES
        ],
        "gini, +synthesis": [
            _exact_rate("gini", SYNTHESIS_RATE, c, rng) for c in COVERAGES
        ],
        "baseline, +synthesis": [
            _exact_rate("baseline", SYNTHESIS_RATE, c, rng) for c in COVERAGES
        ],
    }
    return series


def test_ablation_synthesis_errors(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        f"Ablation: exact-decode rate vs coverage "
        f"(seq={SEQUENCING_RATE:.0%}, synth={SYNTHESIS_RATE:.1%})",
        list(COVERAGES),
        series,
    )
    sequencing_only = np.array(series["gini, seq-only"])
    with_synthesis = np.array(series["gini, +synthesis"])
    baseline_synth = np.array(series["baseline, +synthesis"])
    # Pure sequencing noise is solved by coverage alone.
    assert sequencing_only[-1] == 1.0
    # Synthesis errors persist at every coverage: the two-stage channel is
    # never better, and the ECC (not the coverage) carries the load.
    assert (with_synthesis <= sequencing_only + 1e-9).all()
    # Gini's even error spread crosses the synthesis floor where the
    # baseline's peaked middle rows still fail: with enough coverage the
    # only remaining errors are synthesis-borne, and Gini distributes them
    # across codewords while the baseline stacks sequencing residue *and*
    # synthesis errors onto the same middle rows.
    assert with_synthesis[-1] == 1.0
    assert with_synthesis[-1] > baseline_synth[-1]
