"""Figure 14: image quality loss vs coverage for all three layouts.

Paper setup: an encrypted multi-image archive (plus directory) in one
encoding unit; coverage swept from 20 down to 3 at error rates 3-12%.
Expected results:

* at generous coverage everything decodes losslessly;
* as coverage drops, the baseline fails *catastrophically* (images
  undecodable) while DnaMapper degrades *gracefully* (fractional-dB
  losses first, important bits protected longest);
* Gini decodes error-free below the baseline's threshold, but once its
  own threshold is crossed all codewords fail simultaneously — its loss
  cliff is steeper than the baseline's (the paper's "all of a sudden all
  codewords fail at the same time").
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import CATASTROPHIC_LOSS_DB, ImageStoreExperiment
from repro.core import MatrixConfig
from repro.media import synth_image

MATRIX = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=24)
ERROR_RATES = (0.06, 0.12)
COVERAGES = (12, 10, 8, 6, 5, 4, 3)
POOL_REPEATS = 2


def run_experiment(rng=2022):
    generator = np.random.default_rng(rng)
    images = [synth_image(64, 64, rng=generator) for _ in range(2)]
    losses = {}
    for layout in ("baseline", "dnamapper", "gini"):
        experiment = ImageStoreExperiment(
            images, MATRIX, layout=layout, quality=60, rng=generator,
        )
        for rate in ERROR_RATES:
            series = []
            for coverage in COVERAGES:
                total = 0.0
                for repeat in range(POOL_REPEATS):
                    pool = experiment.build_pool(
                        rate, max_coverage=max(COVERAGES),
                        rng=generator,
                    )
                    total += experiment.retrieve(
                        pool.clusters_at(coverage)
                    ).mean_loss_db
                series.append(total / POOL_REPEATS)
            losses[(layout, rate)] = series
    return losses


def test_fig14_quality_vs_coverage(benchmark):
    losses = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Fig 14: mean quality loss (dB) vs coverage",
        list(COVERAGES),
        {f"{layout}@{int(rate*100)}%": losses[(layout, rate)]
         for layout, rate in losses},
    )
    for rate in ERROR_RATES:
        baseline = np.array(losses[("baseline", rate)])
        dnamapper = np.array(losses[("dnamapper", rate)])
        # At the most generous coverage everyone is (near-)lossless.
        assert baseline[0] < 1.0 and dnamapper[0] < 1.0
        # Graceful degradation: where the baseline loses meaningful quality,
        # DnaMapper loses clearly less on average.
        stressed = baseline > 3.0
        if stressed.any():
            assert dnamapper[stressed].mean() < 0.7 * baseline[stressed].mean()
    # The high-error regime must actually stress the baseline into
    # catastrophic territory somewhere on the sweep (as in the paper).
    worst = np.array(losses[("baseline", ERROR_RATES[-1])])
    assert worst.max() > 10.0
