"""Ablation: why Gini stripes diagonally instead of permuting randomly.

The paper's Figure 8a insists that a wrapping diagonal "continue[s] from
the next column" so that *every symbol in every molecule belongs to a
different codeword* — preserving the baseline's erasure guarantee (one
lost molecule costs each codeword exactly one symbol). A random
interleaver flattens positional error just as well, but lets one codeword
own several symbols of the same molecule, so molecule losses can blow
through the erasure budget.

This ablation measures both halves of the trade:

* error flattening (Gini coefficient of per-codeword error counts) —
  random ≈ diagonal, both far better than the baseline;
* survival of exactly-nsym molecule losses — diagonal always survives,
  random usually does not.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import errors_per_codeword, gini_coefficient
from repro.channel import ErrorModel, ReadPool, ReadCluster
from repro.channel import FixedCoverage, SequencingSimulator
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.core.layout import build_layout

MATRIX = MatrixConfig(m=8, n_columns=120, nsym=20, payload_rows=16)
ERROR_RATE = 0.09
COVERAGE = 5
TRIALS = 3
LOSS_TRIALS = 10


def _flatten_metric(layout_name, rng):
    generator = np.random.default_rng(rng)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout=layout_name))
    layout = build_layout(layout_name, MATRIX)
    counts = np.zeros(MATRIX.payload_rows)
    for _ in range(TRIALS):
        bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        pool = ReadPool(unit.strands, ErrorModel.uniform(ERROR_RATE),
                        max_coverage=COVERAGE, rng=generator)
        received = pipeline.receive(pool.clusters_at(COVERAGE))
        counts += errors_per_codeword(layout, unit.matrix, received.matrix,
                                      received.erased_columns)
    return gini_coefficient(counts)


def _erasure_survival(layout_name, rng):
    generator = np.random.default_rng(rng)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout=layout_name))
    bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
    unit = pipeline.encode(bits)
    simulator = SequencingSimulator(ErrorModel.uniform(0.0), FixedCoverage(1))
    survived = 0
    for trial in range(LOSS_TRIALS):
        clusters = simulator.sequence(unit.strands, generator)
        lost = generator.choice(MATRIX.n_columns, MATRIX.nsym, replace=False)
        for column in lost:
            clusters[column] = ReadCluster(source_index=int(column), reads=[])
        decoded, report = pipeline.decode(clusters, bits.size)
        survived += int(report.clean and np.array_equal(decoded, bits))
    return survived / LOSS_TRIALS


def run_experiment(rng=2022):
    layouts = ("baseline", "gini", "random")
    return (
        {name: _flatten_metric(name, rng) for name in layouts},
        {name: _erasure_survival(name, rng) for name in layouts},
    )


def test_ablation_interleaver(benchmark):
    flatness, survival = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_series(
        "Ablation: interleaver choice (error flatness + erasure survival)",
        ["gini_coefficient", "nsym_loss_survival"],
        {name: [flatness[name], survival[name]]
         for name in ("baseline", "gini", "random")},
    )
    # Both interleavers flatten the per-codeword error distribution.
    assert flatness["gini"] < 0.5 * flatness["baseline"]
    assert flatness["random"] < 0.5 * flatness["baseline"]
    # Only the diagonal stripe keeps the full erasure guarantee.
    assert survival["baseline"] == 1.0
    assert survival["gini"] == 1.0
    assert survival["random"] < 0.5
