#!/usr/bin/env python
"""CI perf-trend gate over the committed benchmark evidence.

The figure benchmarks leave machine-readable evidence in
``benchmarks/out/``: per-test wall-clock timings (``BENCH_timings.json``)
and the printed series of every figure (``BENCH_<slug>.json``). This
script compares a *fresh* run of that evidence against the *committed
baseline* and fails when a tracked stage regressed:

* **timings** — a test regresses when its fresh wall clock exceeds the
  baseline by more than ``--tolerance`` (a fraction; default 0.3 =
  +30%) *and* by at least ``--min-seconds`` of absolute growth. The
  shared-runner noise floor lives in the absolute band, not the
  fraction: a 40ms figure tripling to 120ms is timer noise and stays
  under ``--min-seconds``, but the same figure climbing to a full
  second is the scalar-loop regression the gate exists to catch —
  which is why the fraction can sit at a tight 30% without flaking.
  Tests present on only one side are reported but never fail the gate
  (benchmarks come and go with the repo).
* **series** — the figures are seeded simulations, so their series are
  expected to reproduce; any value drifting past ``--series-rtol``
  relative tolerance fails the gate (a silent accuracy change is as much
  a regression as a slow decode).
* **stages** (``--stage``) — every benchmark run also leaves one run
  manifest (``MANIFEST_<slug>.json``, see ``benchmarks/conftest.py``)
  with per-stage wall times. A stage regresses when its *share* of the
  run's traced wall time grows by more than ``--stage-share`` points
  *and* its absolute time grows by ``--min-seconds`` — this catches one
  stage (say, clustering) quietly eating the budget another stage freed,
  which the total-wall-clock gate cannot see. Stages or manifests
  present on only one side are reported but never fail the gate.

Usage (what the ``perf-trend`` workflow job runs; the tracked selection
spans the consensus-bound figures, the min-coverage sweep, the skew
figure, the clustering and LSH-scaling figures and the ablation
suite)::

    cp -r benchmarks/out /tmp/baseline        # committed evidence
    python -m pytest benchmarks -q \
        -k "fig03 or fig04 or fig05 or fig11 or fig12 or fig_skew \
            or fig_clustering or fig_lsh or ablation"
    python benchmarks/check_trend.py --baseline /tmp/baseline \
        --fresh benchmarks/out

Exit code 0 = no regression, 1 = regression, 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TIMINGS_NAME = "BENCH_timings.json"
MANIFEST_GLOB = "MANIFEST_*.json"


def load_timings(directory: Path) -> dict:
    """The ``{test_id: seconds}`` table of one evidence directory."""
    path = Path(directory) / TIMINGS_NAME
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return {}


def compare_timings(baseline, fresh, tolerance, min_seconds, only=()):
    """Classify every test's timing movement.

    A movement must clear *both* bars to count: the relative band
    (``tolerance``, a fraction of the baseline) and the absolute band
    (``min_seconds`` of wall-clock change) — the relative bar alone would
    flag millisecond jitter on fast figures, the absolute bar alone would
    hide a slow benchmark creeping by seconds.

    Returns a list of ``(kind, test_id, base_s, fresh_s)`` rows where
    ``kind`` is one of ``regression``, ``improvement``, ``ok``,
    ``ignored`` (past the relative band but under the absolute one — i.e.
    noise), ``baseline-only`` or ``fresh-only``. Only ``regression`` rows
    fail the gate.
    """
    rows = []

    def tracked(test_id):
        return not only or any(token in test_id for token in only)

    for test_id in sorted(set(baseline) | set(fresh)):
        if not tracked(test_id):
            continue
        if test_id not in fresh:
            rows.append(("baseline-only", test_id, baseline[test_id], None))
            continue
        if test_id not in baseline:
            rows.append(("fresh-only", test_id, None, fresh[test_id]))
            continue
        base_s, fresh_s = float(baseline[test_id]), float(fresh[test_id])
        if fresh_s > base_s * (1.0 + tolerance):
            kind = ("regression" if fresh_s - base_s >= min_seconds
                    else "ignored")
        elif base_s > fresh_s * (1.0 + tolerance):
            kind = ("improvement" if base_s - fresh_s >= min_seconds
                    else "ignored")
        else:
            kind = "ok"
        rows.append((kind, test_id, base_s, fresh_s))
    return rows


def _coerce(value):
    """Numbers stored as strings compare as numbers (older evidence
    files stringified numpy-integer x values)."""
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return value
    return value


def _values_match(a, b, rtol):
    a, b = _coerce(a), _coerce(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(a - b) <= rtol * max(abs(a), abs(b), 1e-12)
    return a == b


def compare_series(baseline_dir, fresh_dir, rtol):
    """Series comparison between the two evidence directories.

    Compares every ``BENCH_*.json`` (except the timings table) present in
    *both* directories. Returns ``(problems, notes)``: ``problems`` are
    ``(file, where, baseline, fresh)`` drift rows that fail the gate;
    ``notes`` report evidence present only in the baseline (a file the
    fresh run did not produce, or a series name that vanished from a
    figure it did) — informational, like the timings' one-sided rows,
    but never silent.

    Series the baseline payload lists under ``timing_series`` hold
    wall-clock measurements (requests/sec, latency percentiles); they
    legitimately vary run to run, so they are noted rather than
    drift-gated — ``BENCH_timings.json`` still gates the test's total
    wall clock.
    """
    problems = []
    notes = []
    baseline_dir, fresh_dir = Path(baseline_dir), Path(fresh_dir)
    for base_path in sorted(baseline_dir.glob("BENCH_*.json")):
        if base_path.name == TIMINGS_NAME:
            continue
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            notes.append(f"{base_path.name}: not produced by the fresh run")
            continue
        base = json.loads(base_path.read_text())
        new = json.loads(fresh_path.read_text())
        base_x, new_x = base.get("x", []), new.get("x", [])
        if len(base_x) != len(new_x) or not all(
            _values_match(a, b, rtol) for a, b in zip(base_x, new_x)
        ):
            problems.append((base_path.name, "x", base_x, new_x))
            continue
        base_series = base.get("series", {})
        new_series = new.get("series", {})
        for name in sorted(set(base_series) - set(new_series)):
            notes.append(
                f"{base_path.name}: series {name!r} missing from fresh run"
            )
        timing_names = set(base.get("timing_series", []))
        for name in sorted(set(base_series) & set(new_series)):
            if name in timing_names:
                notes.append(
                    f"{base_path.name}: timing series {name!r} not "
                    f"drift-gated (wall-clock measurement)"
                )
                continue
            for i, (a, b) in enumerate(zip(base_series[name],
                                           new_series[name])):
                if not _values_match(a, b, rtol):
                    problems.append(
                        (base_path.name, f"{name}[x={base_x[i]}]", a, b)
                    )
    return problems, notes


def compare_stages(baseline_dir, fresh_dir, share_tolerance, min_seconds):
    """Per-stage wall-time comparison over the run manifests.

    Compares every ``MANIFEST_*.json`` present in *both* directories. A
    stage drifts when its share of the run's ``total_seconds`` grows by
    more than ``share_tolerance`` (an absolute fraction: 0.15 = 15
    percentage points) *and* its own wall time grows by at least
    ``min_seconds`` — the share bar catches rebalancing the total-time
    gate cannot see, the absolute bar keeps fast runs' share jitter out.

    Returns ``(problems, notes)``: ``problems`` are ``(file, stage,
    base_share, fresh_share, base_s, fresh_s)`` rows that fail the gate;
    ``notes`` report manifests or stages present on only one side.
    """
    problems = []
    notes = []
    baseline_dir, fresh_dir = Path(baseline_dir), Path(fresh_dir)
    for base_path in sorted(baseline_dir.glob(MANIFEST_GLOB)):
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            notes.append(f"{base_path.name}: not produced by the fresh run")
            continue
        base = json.loads(base_path.read_text())
        new = json.loads(fresh_path.read_text())
        base_total = float(base.get("total_seconds", 0.0))
        new_total = float(new.get("total_seconds", 0.0))
        base_stages = base.get("stages", {})
        new_stages = new.get("stages", {})
        for name in sorted(set(base_stages) | set(new_stages)):
            if name not in new_stages:
                notes.append(
                    f"{base_path.name}: stage {name!r} missing from "
                    "fresh run"
                )
                continue
            if name not in base_stages:
                notes.append(
                    f"{base_path.name}: stage {name!r} new in fresh run"
                )
                continue
            base_s = float(base_stages[name].get("seconds", 0.0))
            fresh_s = float(new_stages[name].get("seconds", 0.0))
            base_share = base_s / base_total if base_total > 0 else 0.0
            fresh_share = fresh_s / new_total if new_total > 0 else 0.0
            if (fresh_share - base_share > share_tolerance
                    and fresh_s - base_s >= min_seconds):
                problems.append((base_path.name, name, base_share,
                                 fresh_share, base_s, fresh_s))
    return problems, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when fresh benchmark evidence regresses past "
                    "the committed baseline."
    )
    parser.add_argument("--baseline", required=True, type=Path,
                        help="directory holding the baseline BENCH_*.json")
    parser.add_argument("--fresh", required=True, type=Path,
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="allowed fractional wall-clock growth "
                             "(default 0.3 = +30%%; --min-seconds "
                             "absorbs the small-figure noise floor)")
    parser.add_argument("--min-seconds", type=float, default=0.5,
                        help="minimum absolute wall-clock change (seconds) "
                             "for a movement to count; smaller deltas are "
                             "timer noise even when past the tolerance")
    parser.add_argument("--series-rtol", type=float, default=1e-9,
                        help="relative tolerance for series values")
    parser.add_argument("--only", nargs="*", default=(),
                        help="track only test ids containing any of these "
                             "substrings (default: all)")
    parser.add_argument("--skip-series", action="store_true",
                        help="compare timings only")
    parser.add_argument("--stage", action="store_true",
                        help="also compare per-stage wall-time shares "
                             "from the MANIFEST_*.json run manifests")
    parser.add_argument("--stage-share", type=float, default=0.15,
                        help="allowed growth of a stage's share of traced "
                             "wall time, in absolute fraction "
                             "(default 0.15 = 15 percentage points)")
    args = parser.parse_args(argv)

    for directory in (args.baseline, args.fresh):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2
    baseline = load_timings(args.baseline)
    fresh = load_timings(args.fresh)
    if not baseline or not fresh:
        print("error: missing BENCH_timings.json on one side",
              file=sys.stderr)
        return 2

    rows = compare_timings(baseline, fresh, args.tolerance,
                           args.min_seconds, args.only)
    width = max((len(r[1]) for r in rows), default=10)
    for kind, test_id, base_s, fresh_s in rows:
        base_txt = "-" if base_s is None else f"{base_s:8.3f}s"
        fresh_txt = "-" if fresh_s is None else f"{fresh_s:8.3f}s"
        print(f"{kind:13s} {test_id.ljust(width)} {base_txt:>10} "
              f"-> {fresh_txt:>10}")
    regressions = [r for r in rows if r[0] == "regression"]

    series_problems = []
    if not args.skip_series:
        series_problems, notes = compare_series(args.baseline, args.fresh,
                                                args.series_rtol)
        for note in notes:
            print(f"series-note   {note}")
        for name, where, a, b in series_problems:
            print(f"series-drift  {name}: {where}: {a!r} -> {b!r}")

    stage_problems = []
    if args.stage:
        stage_problems, stage_notes = compare_stages(
            args.baseline, args.fresh, args.stage_share, args.min_seconds
        )
        for note in stage_notes:
            print(f"stage-note    {note}")
        for name, stage, base_share, fresh_share, base_s, fresh_s in \
                stage_problems:
            print(f"stage-drift   {name}: {stage}: "
                  f"{base_share:.1%} ({base_s:.3f}s) -> "
                  f"{fresh_share:.1%} ({fresh_s:.3f}s)")

    if regressions or series_problems or stage_problems:
        print(f"\nFAIL: {len(regressions)} timing regression(s), "
              f"{len(series_problems)} series drift(s), "
              f"{len(stage_problems)} stage drift(s) past tolerance")
        return 1
    print(f"\nOK: {sum(1 for r in rows if r[0] in ('ok', 'improvement'))} "
          f"tracked timings within +{args.tolerance:.0%}, series stable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
