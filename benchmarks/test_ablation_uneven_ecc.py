"""Ablation: the unequal-error-correction strawman (paper Section 4.1).

The paper argues that provisioning per-row redundancy for an *assumed*
skew curve cannot stand the test of time: the skew magnitude changes with
the sequencing technology, the coverage, and even per-cluster coverage
dispersion, while Gini needs no such assumption. This ablation makes the
argument quantitative:

* an uneven-ECC unit is provisioned for the skew measured at one
  operating point (coverage 8);
* decoding is then attempted at the provisioned point and at a *different*
  operating point (lower coverage, same average redundancy);
* Gini at the same total redundancy is decoded at both points.

Expected: uneven ECC does fine at its design point but degrades when the
realized skew no longer matches, while Gini is insensitive by design.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import positional_error_profile
from repro.channel import ErrorModel, ReadPool
from repro.consensus import TwoWayReconstructor
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig
from repro.ecc import UnevenEccScheme, redundancy_profile_for_skew

MATRIX = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=24)
ERROR_RATE = 0.09
DESIGN_COVERAGE = 10
OFF_DESIGN_COVERAGE = 6
TRIALS = 4


def _row_skew_curve(coverage, rng):
    """Expected per-row error intensity measured at one operating point.

    400 trials keep the measured curve's shape stable: at the design
    coverage errors are rare enough that a few dozen trials can realize
    an all-zero (flat) curve, which would make the provisioning uniform.
    The batched read plane makes this many trials essentially free.
    """
    profile = positional_error_profile(
        TwoWayReconstructor(), MATRIX.strand_length,
        ErrorModel.uniform(ERROR_RATE), coverage, trials=400, rng=rng,
    )
    # Skip the index bases; average base-error over each row's bases.
    per_base = profile[MATRIX.index_bases:]
    return per_base.reshape(MATRIX.payload_rows, MATRIX.m // 2).mean(axis=1)


def _uneven_failures(scheme, pipeline, coverage, rng):
    """Fraction of rows the uneven scheme fails to decode."""
    generator = np.random.default_rng(rng)
    failures = 0
    total = 0
    for _ in range(TRIALS):
        data = generator.integers(0, 256, scheme.total_data_symbols)
        matrix = scheme.encode(data)
        # Ship the uneven matrix through the real strand channel by
        # reusing the pipeline's strand format (index + column symbols).
        strands = [
            pipeline._column_to_strand(matrix, column)
            for column in range(MATRIX.n_columns)
        ]
        pool = ReadPool(strands, ErrorModel.uniform(ERROR_RATE),
                        max_coverage=coverage, rng=generator)
        received = pipeline.receive(pool.clusters_at(coverage))
        _, row_ok = scheme.decode(
            received.matrix, erasures=received.erased_columns
        )
        failures += sum(1 for ok in row_ok if not ok)
        total += len(row_ok)
    return failures / total


def _gini_exact_rate(coverage, rng):
    generator = np.random.default_rng(rng)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="gini"))
    exact = 0
    for _ in range(TRIALS):
        bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
        unit = pipeline.encode(bits)
        pool = ReadPool(unit.strands, ErrorModel.uniform(ERROR_RATE),
                        max_coverage=coverage, rng=generator)
        decoded, report = pipeline.decode(pool.clusters_at(coverage), bits.size)
        exact += int(report.clean and np.array_equal(decoded, bits))
    return exact / TRIALS


def run_experiment(rng=2022):
    curve = _row_skew_curve(DESIGN_COVERAGE, rng)
    parity = redundancy_profile_for_skew(
        curve, total_parity=MATRIX.nsym * MATRIX.payload_rows,
        min_per_row=2, max_per_row=MATRIX.n_columns - 1,
    )
    scheme = UnevenEccScheme(MATRIX.m, MATRIX.n_columns, parity)
    pipeline = DnaStoragePipeline(PipelineConfig(matrix=MATRIX, layout="baseline"))
    return {
        "uneven_design": _uneven_failures(scheme, pipeline, DESIGN_COVERAGE, rng),
        "uneven_off": _uneven_failures(scheme, pipeline, OFF_DESIGN_COVERAGE, rng),
        "gini_design": _gini_exact_rate(DESIGN_COVERAGE, rng),
        "gini_off": _gini_exact_rate(OFF_DESIGN_COVERAGE, rng),
        "parity_profile": parity,
    }


def test_ablation_uneven_ecc(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    parity = results.pop("parity_profile")
    print_series(
        f"Ablation: uneven ECC (designed at coverage {DESIGN_COVERAGE}, "
        f"off-design {OFF_DESIGN_COVERAGE}) vs Gini",
        ["row-failure-rate / exact-rate"],
        {key: [value] for key, value in results.items()},
    )
    print("per-row parity profile:", parity)
    # The provisioning is genuinely uneven: middle rows got more parity.
    rows = MATRIX.payload_rows
    assert max(parity[rows // 2 - 2: rows // 2 + 2]) > 2 * min(parity[:2] + parity[-2:])
    # At the design point, uneven ECC mostly works.
    assert results["uneven_design"] <= 0.15
    # Off the design point, the realized skew exceeds the provisioned one
    # somewhere and row failures multiply.
    assert results["uneven_off"] > 2 * max(results["uneven_design"], 0.01)
