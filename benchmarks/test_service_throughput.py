"""Serving-plane throughput: coalescing batch window sweep.

The random-access serving plane (``repro.service``) answers concurrent
object reads by coalescing each tick's queue into one spanning-batch
decode — one consensus pass and one RS errata pass however many tickets
drain. This benchmark measures what that buys: a corpus of 32 encoded
objects is submitted all at once and drained through ``StoreService``
at batch windows 1..32, where window 1 is the pre-redesign baseline
(each request decoded independently, exactly N ``store.read`` calls).

Reported per window: requests/sec (wall clock, best-of-3), per-request
p50/p99 latency in ms estimated through the live service's own
bounded-memory ``TimingHistogram`` (submission to answer, so small
windows answer early tickets sooner while large windows amortize the
decode), and the
deterministic pass counts the coalescing contract pins — ticks,
consensus passes and RS errata passes per 32-request drain (always
``ceil(32/window)`` each).  The acceptance bar asserted here: window 8
beats the independent-decode baseline by >= 2x.

A warm-cache coda re-drains the corpus through a cache-enabled service
and checks the repeat pass runs zero consensus calls.

The wall-clock series are declared via ``timing_series`` so
``check_trend.py`` notes them instead of drift-gating machine-dependent
numbers; the pass counts stay gated.
"""

import time

import numpy as np

from benchmarks.conftest import OUT_DIR, print_series
from repro.channel import ErrorModel, FixedCoverage, SequencingSimulator
from repro.core import MatrixConfig, PipelineConfig
from repro.core.store import DnaStore
from repro.observability import TimingHistogram, build_manifest, get_tracer
from repro.service import StoreService

MATRIX = MatrixConfig(m=8, n_columns=24, nsym=4, payload_rows=6)
N_OBJECTS = 32
WINDOWS = (1, 2, 4, 8, 16, 32)
ROUNDS = 3
ERROR_RATE = 0.01
COVERAGE = 5


def build_corpus():
    """Encode and sequence 32 single-unit objects."""
    store = DnaStore(PipelineConfig(matrix=MATRIX))
    rng = np.random.default_rng(2022)
    simulator = SequencingSimulator(
        ErrorModel.uniform(ERROR_RATE), FixedCoverage(COVERAGE)
    )
    objects = {}
    for k in range(N_OBJECTS):
        bits = rng.integers(0, 2, store.unit_capacity_bits, dtype=np.uint8)
        image = store.encode(bits)
        reads = simulator.sequence_store(image, rng=3000 + k)
        objects[f"obj{k}"] = (reads, bits)
    return store, objects


def make_service(store, objects, window, cache_capacity=0):
    service = StoreService(store, cache_capacity=cache_capacity,
                           batch_window=window)
    for oid, (reads, bits) in objects.items():
        service.put(oid, reads, bits.size)
    return service


def drain(service, objects):
    """Submit every object then tick until the queue empties."""
    start = time.perf_counter()
    for oid in objects:
        service.submit(oid)
    results = []
    n_ticks = 0
    while service.queue_depth:
        results.extend(service.tick())
        n_ticks += 1
    return time.perf_counter() - start, n_ticks, results


def _stage_calls(name):
    return get_tracer().stage_totals().get(name, {}).get("calls", 0)


def measure_window(store, objects, window):
    service = make_service(store, objects, window)
    drain(service, objects)  # warm-up (allocator, caches, JIT-free but fair)

    consensus0 = _stage_calls("consensus.reconstruct")
    errata0 = _stage_calls("rs.decode_words")
    elapsed, n_ticks, results = drain(service, objects)
    consensus_passes = _stage_calls("consensus.reconstruct") - consensus0
    errata_passes = _stage_calls("rs.decode_words") - errata0

    exact = all(
        result.clean
        and np.array_equal(result.bits, objects[result.object_id][1])
        for result in results
    )
    latencies = [result.seconds for result in results]
    for _ in range(ROUNDS - 1):
        again, _, rerun = drain(service, objects)
        if again < elapsed:
            elapsed = again
            latencies = [result.seconds for result in rerun]
    # Quantiles come from the bounded-memory TimingHistogram the live
    # service itself uses (fine buckets: ~12% relative width), not
    # np.percentile over a kept-forever array — the benchmark reports
    # what an operator of a long-running service would actually see.
    # These are wall-clock series (timing_series below), not gated.
    hist = TimingHistogram("bench.request_seconds", buckets_per_decade=20)
    hist.observe_many(latencies)
    return {
        "n_ticks": n_ticks,
        "consensus_passes": consensus_passes,
        "rs_passes": errata_passes,
        "decode_exact": float(exact),
        "requests_per_sec": N_OBJECTS / elapsed,
        "p50_ms": hist.quantile(0.50) * 1e3,
        "p99_ms": hist.quantile(0.99) * 1e3,
    }


def run_experiment():
    store, objects = build_corpus()
    rows = [measure_window(store, objects, window) for window in WINDOWS]

    # Warm-cache coda: a cache-backed service answers the repeat drain
    # without touching the pipeline at all.
    cached = make_service(store, objects, window=None, cache_capacity=256)
    drain(cached, objects)  # cold pass fills the cache
    consensus0 = _stage_calls("consensus.reconstruct")
    warm_elapsed, _, warm_results = drain(cached, objects)
    warm = {
        "consensus_passes": _stage_calls("consensus.reconstruct")
        - consensus0,
        "all_cache_hits": all(r.cache_hit for r in warm_results),
        "requests_per_sec": N_OBJECTS / warm_elapsed,
    }
    return rows, warm, cached.events


def test_service_throughput(benchmark, bench_tracer):
    rows, warm, events = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print(
        f"\nServing-plane drain of {N_OBJECTS} objects vs batch window "
        f"(window 1 = independent decodes; p=1%, N={COVERAGE})"
    )
    print_series(
        "Service",
        list(WINDOWS),
        {
            key: [row[key] for row in rows]
            for key in (
                "n_ticks", "consensus_passes", "rs_passes", "decode_exact",
                "requests_per_sec", "p50_ms", "p99_ms",
            )
        },
        timing_series=("requests_per_sec", "p50_ms", "p99_ms"),
    )
    print(
        f"warm-cache repeat drain: {warm['requests_per_sec']:.0f} req/s, "
        f"{warm['consensus_passes']} consensus passes"
    )

    # Every drain recovers every object exactly.
    assert all(row["decode_exact"] == 1.0 for row in rows)
    # The coalescing contract: one consensus pass and one errata pass
    # per tick, ceil(N / window) ticks per drain.
    for window, row in zip(WINDOWS, rows):
        expected_ticks = -(-N_OBJECTS // window)
        assert row["n_ticks"] == expected_ticks
        assert row["consensus_passes"] == expected_ticks
        assert row["rs_passes"] == expected_ticks
    # The acceptance bar: coalescing 8 requests per tick at least
    # doubles throughput over one-request-at-a-time serving.
    baseline = rows[0]["requests_per_sec"]
    at_eight = rows[WINDOWS.index(8)]["requests_per_sec"]
    assert at_eight >= 2.0 * baseline, (
        f"window 8 {at_eight:.0f} req/s < 2x baseline {baseline:.0f} req/s"
    )
    # Warm-cache repeats bypass the pipeline entirely.
    assert warm["consensus_passes"] == 0
    assert warm["all_cache_hits"]

    # The named manifest the perf-trend stage gate tracks (the autouse
    # fixture also writes the per-nodeid manifest, as for every bench).
    OUT_DIR.mkdir(exist_ok=True)
    manifest = build_manifest(bench_tracer, "service")
    manifest.save(OUT_DIR / "MANIFEST_service.json")
    # The warm-cache service's structured event log rides along as a CI
    # artifact (submit/coalesce/decode/cache_hit/complete JSON lines).
    events.save(OUT_DIR / "EVENTS_service.jsonl")
