"""Ablation: Gini with reliability classes (the paper's Figure 8b).

Excluding rows from the interleaving keeps them as plain row codewords.
Excluding the *end* rows creates a premium reliability class: those rows
sit at the reliable molecule ends, collect few errors, and keep decoding
at coverages where the interleaved middle group already fails. The paper
sketches this as a way to combine Gini with per-class guarantees.
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.channel import ErrorModel, ReadPool
from repro.core import DnaStoragePipeline, MatrixConfig, PipelineConfig

MATRIX = MatrixConfig(m=8, n_columns=160, nsym=30, payload_rows=24)
ERROR_RATE = 0.11
COVERAGES = (13, 8, 6, 5, 4)
TRIALS = 4
EXCLUDED = (0, MATRIX.payload_rows - 1)  # first and last rows: premium class


def run_experiment(rng=2022):
    generator = np.random.default_rng(rng)
    pipeline = DnaStoragePipeline(PipelineConfig(
        matrix=MATRIX, layout="gini", gini_excluded_rows=EXCLUDED,
    ))
    premium_fail = []
    standard_fail = []
    for coverage in COVERAGES:
        premium = standard = 0
        for _ in range(TRIALS):
            bits = generator.integers(0, 2, MATRIX.data_bits).astype(np.uint8)
            unit = pipeline.encode(bits)
            pool = ReadPool(unit.strands, ErrorModel.uniform(ERROR_RATE),
                            max_coverage=coverage, rng=generator)
            _, report = pipeline.decode(pool.clusters_at(coverage), bits.size)
            failed = set(report.failed_codewords)
            premium += sum(1 for k in EXCLUDED if k in failed)
            standard += sum(1 for k in failed if k not in EXCLUDED)
        premium_fail.append(premium / (TRIALS * len(EXCLUDED)))
        standard_fail.append(
            standard / (TRIALS * (MATRIX.payload_rows - len(EXCLUDED)))
        )
    return premium_fail, standard_fail


def test_ablation_gini_classes(benchmark):
    premium_fail, standard_fail = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    print_series(
        "Ablation: Gini reliability classes (excluded end rows vs interleaved)",
        list(COVERAGES),
        {"premium_fail_rate": premium_fail,
         "standard_fail_rate": standard_fail},
    )
    premium = np.array(premium_fail)
    standard = np.array(standard_fail)
    # Once the standard class starts failing, the premium class fails
    # strictly less across the sweep.
    stressed = standard > 0
    assert stressed.any()
    assert premium[stressed].mean() < standard[stressed].mean()
    # At the highest coverage, everything decodes.
    assert premium[0] == 0 and standard[0] == 0
