"""Figure 3: positional error distribution of one-way reconstruction.

Paper setup: P = 5%, N = 5, L = 200, DNA alphabet. Expected shape: error
probability near zero at the start and rising sharply towards the end of
the strand (reaching roughly 0.2-0.25 at the far end in the paper).
"""

import numpy as np

from benchmarks.conftest import print_series
from repro.analysis import positional_error_profile
from repro.channel import ErrorModel
from repro.consensus import OneWayReconstructor

LENGTH = 200
ERROR_RATE = 0.05
COVERAGE = 5
TRIALS = 120


def run_experiment(trials=TRIALS, rng=2022):
    return positional_error_profile(
        OneWayReconstructor(),
        length=LENGTH,
        error_model=ErrorModel.uniform(ERROR_RATE),
        coverage=COVERAGE,
        trials=trials,
        rng=rng,
    )


def test_fig03_one_way_skew(benchmark):
    profile = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    buckets = profile.reshape(20, 10).mean(axis=1)
    print_series(
        "Fig 3: one-way positional error (P=5%, N=5, L=200)",
        [f"{10*i}-{10*i+9}" for i in range(20)],
        {"p_error": buckets.tolist()},
    )
    # The paper's qualitative shape: monotone-ish rise, sharp at the end.
    assert buckets[0] < 0.02
    assert buckets[-1] > 0.10
    assert buckets[-1] > 5 * buckets[0]
    # The rise is genuinely positional: the second half dominates the first.
    assert profile[100:].mean() > 2 * profile[:100].mean()
